#include "anb/util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace anb {

Json Json::array_of(const std::vector<double>& xs) {
  Array a;
  a.reserve(xs.size());
  for (double x : xs) a.emplace_back(x);
  return Json(std::move(a));
}

Json Json::array_of(const std::vector<int>& xs) {
  Array a;
  a.reserve(xs.size());
  for (int x : xs) a.emplace_back(x);
  return Json(std::move(a));
}

bool Json::as_bool() const {
  ANB_CHECK(is_bool(), "Json: not a bool");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  ANB_CHECK(is_number(), "Json: not a number");
  return std::get<double>(value_);
}

int Json::as_int() const {
  const double d = as_number();
  const double r = std::round(d);
  ANB_CHECK(std::abs(d - r) < 1e-9, "Json: number is not integral");
  return static_cast<int>(r);
}

const std::string& Json::as_string() const {
  ANB_CHECK(is_string(), "Json: not a string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  ANB_CHECK(is_array(), "Json: not an array");
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  ANB_CHECK(is_object(), "Json: not an object");
  return std::get<Object>(value_);
}

Json::Array& Json::as_array() {
  ANB_CHECK(is_array(), "Json: not an array");
  return std::get<Array>(value_);
}

Json::Object& Json::as_object() {
  ANB_CHECK(is_object(), "Json: not an object");
  return std::get<Object>(value_);
}

const Json& Json::at(const std::string& key) const {
  const auto& obj = as_object();
  auto it = obj.find(key);
  ANB_CHECK(it != obj.end(), "Json: missing key '" + key + "'");
  return it->second;
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = Object{};
  return as_object()[key];
}

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

const Json& Json::at(std::size_t i) const {
  const auto& arr = as_array();
  ANB_CHECK(i < arr.size(), "Json: array index out of range");
  return arr[i];
}

std::size_t Json::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  ANB_CHECK(false, "Json: size() on non-container");
  return 0;
}

std::vector<double> Json::as_double_vector() const {
  const auto& arr = as_array();
  std::vector<double> out;
  out.reserve(arr.size());
  for (const auto& v : arr) out.push_back(v.as_number());
  return out;
}

std::vector<int> Json::as_int_vector() const {
  const auto& arr = as_array();
  std::vector<int> out;
  out.reserve(arr.size());
  for (const auto& v : arr) out.push_back(v.as_int());
  return out;
}

void Json::push_back(Json v) {
  if (is_null()) value_ = Array{};
  as_array().push_back(std::move(v));
}

namespace {

void escape_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void format_number(std::string& out, double d) {
  ANB_CHECK(std::isfinite(d), "Json: cannot serialize non-finite number");
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    // Integral value: emit without decimal point.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    out += buf;
    return;
  }
  // Round-trippable shortest-ish representation.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  double parsed = 0.0;
  std::sscanf(buf, "%lf", &parsed);
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == d) break;
  }
  out += buf;
}

}  // namespace

void Json::dump_impl(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  auto newline = [&](int d) {
    if (pretty) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };

  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    format_number(out, as_number());
  } else if (is_string()) {
    escape_string(out, as_string());
  } else if (is_array()) {
    const auto& arr = as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i) out += ',';
      newline(depth + 1);
      arr[i].dump_impl(out, indent, depth + 1);
    }
    newline(depth);
    out += ']';
  } else {
    const auto& obj = as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [k, v] : obj) {
      if (!first) out += ',';
      first = false;
      newline(depth + 1);
      escape_string(out, k);
      out += pretty ? ": " : ":";
      v.dump_impl(out, indent, depth + 1);
    }
    newline(depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse() {
    skip_ws();
    Json v = parse_value();
    skip_ws();
    ANB_CHECK(pos_ == text_.size(),
              "Json::parse: trailing characters at offset " +
                  std::to_string(pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) {
    throw Error("Json::parse: " + msg + " at offset " + std::to_string(pos_));
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char get() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (get() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object obj;
    skip_ws();
    if (peek() == '}') {
      get();
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      char c = get();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') {
      get();
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      char c = get();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = get();
      if (c == '"') break;
      if (c == '\\') {
        char e = get();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = get();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                fail("invalid \\u escape");
            }
            ANB_CHECK(code < 0xD800 || code > 0xDFFF,
                      "Json::parse: surrogate pairs not supported");
            // UTF-8 encode the BMP code point.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("invalid escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Json parse_number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("invalid number");
    double value = 0.0;
    auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc{} || ptr != text_.data() + pos_) fail("invalid number");
    return Json(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse(); }

// read_text_file / write_text_file are implemented in io.cpp (the one
// sanctioned home of raw file IO; see anb/util/io.hpp).

}  // namespace anb
