#include "anb/util/fault.hpp"

#include <map>
#include <utility>

#include "anb/obs/registry.hpp"
#include "anb/util/mutex.hpp"
#include "anb/util/rng.hpp"
#include "anb/util/thread_annotations.hpp"

namespace anb::fault {

namespace detail {
std::atomic<int> g_armed_count{0};
}  // namespace detail

namespace {

/// FNV-1a over the site name: stable across runs and platforms, so keyed
/// Bernoulli decisions are reproducible everywhere.
std::uint64_t site_hash(std::string_view site) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char ch : site) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ULL;
  }
  return h;
}

struct SiteState {
  Policy policy;
  std::uint64_t checks = 0;
  std::uint64_t fires = 0;
  bool one_shot_spent = false;
};

struct Registry {
  Mutex mu;
  // std::less<> enables lookups from string_view without a temporary.
  std::map<std::string, SiteState, std::less<>> sites ANB_GUARDED_BY(mu);
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during exit
  return *r;
}

}  // namespace

Policy Policy::always() { return Policy{}; }

Policy Policy::one_shot() {
  Policy p;
  p.trigger = Trigger::kOneShot;
  return p;
}

Policy Policy::every_nth(std::uint64_t n) {
  ANB_CHECK(n >= 1, "fault::Policy::every_nth: n must be >= 1");
  Policy p;
  p.trigger = Trigger::kEveryNth;
  p.n = n;
  return p;
}

Policy Policy::bernoulli(double probability, std::uint64_t seed) {
  ANB_CHECK(probability >= 0.0 && probability <= 1.0,
            "fault::Policy::bernoulli: probability must be in [0, 1]");
  Policy p;
  p.trigger = Trigger::kBernoulli;
  p.probability = probability;
  p.seed = seed;
  return p;
}

double FireInfo::uniform() const {
  return static_cast<double>(draw >> 11) * 0x1.0p-53;
}

void arm(const std::string& site, const Policy& policy) {
  ANB_CHECK(!site.empty(), "fault::arm: empty site name");
  Registry& r = registry();
  MutexLock lock(r.mu);
  r.sites[site] = SiteState{policy};
  detail::g_armed_count.store(static_cast<int>(r.sites.size()),
                              std::memory_order_relaxed);
}

void disarm(const std::string& site) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  r.sites.erase(site);
  detail::g_armed_count.store(static_cast<int>(r.sites.size()),
                              std::memory_order_relaxed);
}

void disarm_all() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  r.sites.clear();
  detail::g_armed_count.store(0, std::memory_order_relaxed);
}

bool is_armed(const std::string& site) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  return r.sites.count(site) > 0;
}

std::optional<Policy> armed_policy(const std::string& site) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  const auto it = r.sites.find(site);
  if (it == r.sites.end()) return std::nullopt;
  return it->second.policy;
}

std::uint64_t fire_count(const std::string& site) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  const auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.fires;
}

std::uint64_t check_count(const std::string& site) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  const auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.checks;
}

std::optional<FireInfo> should_fire(std::string_view site, std::uint64_t key) {
  if (!any_armed()) return std::nullopt;
  Registry& r = registry();
  MutexLock lock(r.mu);
  const auto it = r.sites.find(site);
  if (it == r.sites.end()) return std::nullopt;
  SiteState& st = it->second;
  const Policy& p = st.policy;
  ++st.checks;

  // Deterministic per-(seed, site, key) stream: the first draw decides a
  // Bernoulli trial, the second becomes the FireInfo draw. Counter-based
  // triggers skip the first draw's decision but share the FireInfo stream.
  std::uint64_t stream = hash_combine(hash_combine(p.seed, site_hash(site)), key);
  const std::uint64_t decision_bits = splitmix64(stream);

  bool fire = false;
  switch (p.trigger) {
    case Trigger::kAlways:
      fire = true;
      break;
    case Trigger::kOneShot:
      fire = !st.one_shot_spent;
      st.one_shot_spent = true;
      break;
    case Trigger::kEveryNth:
      fire = (st.checks % p.n) == 0;
      break;
    case Trigger::kBernoulli: {
      const double u = static_cast<double>(decision_bits >> 11) * 0x1.0p-53;
      fire = u < p.probability;
      break;
    }
  }
  if (!fire) return std::nullopt;
  ++st.fires;
  // Keyed decisions are reproducible, so the fire total is thread-count
  // invariant and safe to expose as a registry counter.
  static obs::Counter& fired = obs::counter("anb.fault.fired");
  fired.add(1);
  return FireInfo{splitmix64(stream)};
}

void maybe_throw(std::string_view site, std::uint64_t key) {
  if (!any_armed()) return;
  if (should_fire(site, key)) {
    throw InjectedFault("injected fault at site '" + std::string(site) +
                        "' (key " + std::to_string(key) + ")");
  }
}

ScopedFault::ScopedFault(std::string site, const Policy& policy)
    : site_(std::move(site)), prior_(armed_policy(site_)) {
  arm(site_, policy);
}

ScopedFault::~ScopedFault() {
  if (prior_) {
    arm(site_, *prior_);
  } else {
    disarm(site_);
  }
}

}  // namespace anb::fault
