#include "anb/trainsim/curve.hpp"

#include <algorithm>
#include <cmath>

namespace anb {

namespace {

// Scheme-response constants shared across search spaces; the rationale for
// each value is documented in simulator.cpp's calibration notes.
constexpr double kEpochExponent = 0.55;      // power-law convergence
constexpr double kEpochDeficitBase = 0.040;  // mean deficit coefficient
constexpr double kEpochDeficitDepth = 0.012;
constexpr double kEpochDeficitExpand = 0.010;
constexpr double kEpochDeficitWiggle = 0.0009;  // rank-perturbing component

constexpr double kResDropBase = 0.035;   // accuracy loss per log2 res shrink
constexpr double kResDropSize = 0.025;   // extra loss for large models
constexpr double kResDropWiggle = 0.0015;

constexpr double kBatchPenaltyPerLog2 = 0.004;  // above 512
constexpr double kProgressivePenaltyBase = 0.010;
constexpr double kProgressivePenaltySize = 0.010;

constexpr double kSeedNoiseFloor = 0.0010;
constexpr double kSeedNoiseEpochs = 0.004;  // scaled by 1/sqrt(e_t)

constexpr double kImagesPerEpoch = 1.281e6;
constexpr double kTrainFlopsFactor = 3.0 * 2.0;  // fwd+bwd, 2 flops per MAC
constexpr double kEffectiveFlops = 1.1e13;       // flop/s at batch 512

double batch_efficiency(int batch) {
  // Saturating utilization, normalized to 1.0 at batch 512.
  return (static_cast<double>(batch) / (batch + 256.0)) / (512.0 / 768.0);
}

}  // namespace

double scheme_expected_accuracy(const ArchTraits& traits,
                                const TrainingScheme& scheme) {
  scheme.validate();
  double acc = traits.reference_accuracy;

  // Final-resolution deficit: big models lose more when evaluated small.
  if (scheme.res_finish < 224) {
    const double shrink = std::log2(224.0 / scheme.res_finish);
    const double coef = kResDropBase + kResDropSize * traits.size_factor +
                        kResDropWiggle * traits.res_wiggle;
    acc -= std::max(0.0, coef) * shrink;
  }

  // Under-training deficit: power-law in the epoch ratio, with architecture-
  // dependent convergence speed (deep / wide models converge slower).
  const int e_ref = reference_scheme().total_epochs;
  if (scheme.total_epochs < e_ref) {
    const double k = kEpochDeficitBase +
                     kEpochDeficitDepth * traits.depth_norm +
                     kEpochDeficitExpand * traits.expand_norm +
                     kEpochDeficitWiggle * traits.epoch_wiggle;
    const double ratio = static_cast<double>(e_ref) / scheme.total_epochs;
    acc -= std::max(0.0, k) * (std::pow(ratio, kEpochExponent) - 1.0);
  }

  // Large-batch generalization penalty (fixed epoch budget).
  if (scheme.batch_size > 512) {
    acc -= kBatchPenaltyPerLog2 * std::log2(scheme.batch_size / 512.0);
  }

  // Progressive resizing: epochs spent below the final resolution cost a
  // little accuracy (less than training there entirely, much less time).
  double mean_res = 0.0;
  for (int e = 0; e < scheme.total_epochs; ++e)
    mean_res += scheme.resolution_at_epoch(e);
  mean_res /= scheme.total_epochs;
  const double res_ratio = mean_res / scheme.res_finish;
  acc -= (kProgressivePenaltyBase +
          kProgressivePenaltySize * traits.size_factor) *
         (1.0 - res_ratio);

  return std::clamp(acc, 0.01, 0.99);
}

double scheme_seed_noise_sigma(const TrainingScheme& scheme) {
  scheme.validate();
  return kSeedNoiseFloor + kSeedNoiseEpochs / std::sqrt(scheme.total_epochs);
}

double scheme_training_cost_hours(const ArchTraits& traits,
                                  const TrainingScheme& scheme) {
  scheme.validate();
  double flops = 0.0;
  for (int e = 0; e < scheme.total_epochs; ++e) {
    const double res = scheme.resolution_at_epoch(e);
    // MACs scale quadratically with input resolution on conv skeletons.
    const double macs = traits.macs_224 * (res / 224.0) * (res / 224.0);
    flops += kImagesPerEpoch * kTrainFlopsFactor * macs;
  }
  const double seconds =
      flops / (kEffectiveFlops * batch_efficiency(scheme.batch_size));
  return seconds / 3600.0;
}

}  // namespace anb
