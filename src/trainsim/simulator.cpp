#include "anb/trainsim/simulator.hpp"

#include "anb/trainsim/curve.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "anb/ir/model_ir.hpp"
#include "anb/searchspace/space.hpp"
#include "anb/util/error.hpp"
#include "anb/util/rng.hpp"

namespace anb {

namespace {

// ---- Latent-quality shape constants -------------------------------------
// Stage importance: later stages carry more semantic capacity.
constexpr std::array<double, kNumBlocks> kStageWeight{0.35, 0.50, 0.70, 1.00,
                                                      1.10, 1.30, 0.90};
// SE usefulness grows towards late stages (EfficientNet ablations).
constexpr std::array<double, kNumBlocks> kSeStageWeight{0.30, 0.50, 0.80, 1.00,
                                                        1.20, 1.20, 1.00};

double expansion_gain(int e) {
  switch (e) {
    case 1: return 0.0;
    case 4: return 0.55;
    case 6: return 0.75;
    default: ANB_CHECK(false, "expansion_gain: invalid expansion"); return 0;
  }
}

double depth_gain(int layers) {
  switch (layers) {
    case 1: return 0.0;
    case 2: return 0.30;
    case 3: return 0.45;
    default: ANB_CHECK(false, "depth_gain: invalid layers"); return 0;
  }
}

// Kernel-5 benefit by stage: helps most at mid-network receptive-field
// growth, slightly hurts in the earliest high-resolution stages.
constexpr std::array<double, kNumBlocks> kKernel5Gain{-0.02, 0.02, 0.10, 0.10,
                                                      0.08,  0.04, 0.02};

// ---- Learning-curve / cost constants -------------------------------------
constexpr double kAccFloor = 0.50;   // accuracy of the weakest archs under r
constexpr double kAccRange = 0.50;   // saturating headroom above the floor
constexpr double kQualityScale = 9.0;
constexpr double kLatentWiggleSigma = 0.07;  // idiosyncratic, in q units

// log-MAC normalization bounds of the space at 224 (min/max archs).
constexpr double kLogMacsMin = 17.76;  // ~5.2e7 (all-minimal architecture)
constexpr double kLogMacsMax = 20.59;  // ~8.8e8 (all-maximal architecture)

}  // namespace

namespace {
constexpr int kNumMotifs = 40;
constexpr double kMotifWeightSigma = 0.16;  // q units
}  // namespace

TrainingSimulator::TrainingSimulator(std::uint64_t world_seed)
    : world_seed_(world_seed) {
  // Deterministic motif table: sparse conjunctions over the 28 decisions.
  Rng rng(hash_combine(world_seed_, 0x307F1F5ULL));
  const auto& sizes = MnasSpace::instance().decision_sizes();
  motifs_.reserve(kNumMotifs);
  for (int m = 0; m < kNumMotifs; ++m) {
    Motif motif;
    motif.arity = rng.bernoulli(1.0 / 3.0) ? 3 : 2;
    const auto picks = rng.sample_indices(sizes.size(),
                                          static_cast<std::size_t>(motif.arity));
    for (int a = 0; a < motif.arity; ++a) {
      motif.decision[static_cast<std::size_t>(a)] = static_cast<int>(picks[static_cast<std::size_t>(a)]);
      motif.option[static_cast<std::size_t>(a)] = static_cast<int>(
          rng.uniform_index(static_cast<std::uint64_t>(sizes[picks[static_cast<std::size_t>(a)]])));
    }
    motif.weight = rng.normal(0.0, kMotifWeightSigma);
    motifs_.push_back(motif);
  }
}

double TrainingSimulator::arch_noise_unit(const Architecture& arch,
                                          std::uint64_t stream) const {
  Rng rng(hash_combine(hash_combine(world_seed_, arch.hash()), stream));
  return rng.normal();
}

double TrainingSimulator::latent_quality(const Architecture& arch) const {
  const Arch genotype = MnasSpace::from_blocks(arch);  // validates
  double q = 0.0;
  for (int s = 0; s < kNumBlocks; ++s) {
    const auto& blk = arch.blocks[static_cast<std::size_t>(s)];
    const double fe = expansion_gain(blk.expansion);
    const double fl = depth_gain(blk.layers);
    double contrib = fe + fl;
    // Depth and width reinforce each other; depth with e=1 is mostly wasted.
    contrib += 0.12 * (fl / 0.45) * (fe / 0.75);
    if (blk.kernel == 5) contrib += kKernel5Gain[static_cast<std::size_t>(s)];
    if (blk.se) {
      // SE helps more on wide blocks (it gates more channels usefully).
      contrib += 0.14 * kSeStageWeight[static_cast<std::size_t>(s)] *
                 (0.7 + 0.3 * fe / 0.75);
    }
    q += kStageWeight[static_cast<std::size_t>(s)] * contrib;
  }

  // Global shape terms: very shallow networks underfit ImageNet...
  int total_depth = 0;
  for (const auto& blk : arch.blocks) total_depth += blk.layers;
  if (total_depth < 9) q -= 0.05 * (9 - total_depth);
  // ...and some mid-network 5x5 coverage is needed for receptive field.
  int mid_k5 = 0;
  for (int s = 2; s <= 5; ++s)
    if (arch.blocks[static_cast<std::size_t>(s)].kernel == 5) ++mid_k5;
  if (mid_k5 >= 2) q += 0.08;

  // Motif effects: sparse conjunctions of specific option choices. These
  // carry real (learnable) signal with discrete interaction structure.
  const auto& decisions = genotype.d;
  for (const auto& motif : motifs_) {
    bool active = true;
    for (int a = 0; a < motif.arity && active; ++a) {
      active = decisions[static_cast<std::size_t>(
                   motif.decision[static_cast<std::size_t>(a)])] ==
               motif.option[static_cast<std::size_t>(a)];
    }
    if (active) q += motif.weight;
  }

  // Idiosyncratic component: the part of model quality no simple analytic
  // form captures; this is what bounds surrogate fidelity below 1.0.
  q += kLatentWiggleSigma * arch_noise_unit(arch, /*stream=*/1);
  return q;
}

double TrainingSimulator::reference_accuracy(const Architecture& arch) const {
  return expected_accuracy(arch, reference_scheme());
}

double TrainingSimulator::int8_accuracy_drop(const Architecture& arch) const {
  const ModelIR ir = build_ir(arch, 224);  // validates
  const double log_macs = std::log(static_cast<double>(ir.total_macs()));
  const double size_factor = std::clamp(
      (log_macs - kLogMacsMin) / (kLogMacsMax - kLogMacsMin), 0.0, 1.0);
  double se_fraction = 0.0;
  for (const auto& blk : arch.blocks) se_fraction += blk.se ? 1.0 : 0.0;
  se_fraction /= kNumBlocks;
  // Base ~0.2%, up to ~0.9% for small SE-heavy models; small seeded wiggle.
  const double drop = 0.002 + 0.003 * se_fraction +
                      0.003 * (1.0 - size_factor) +
                      0.0005 * std::abs(arch_noise_unit(arch, 4));
  return std::clamp(drop, 0.0, 0.02);
}

double TrainingSimulator::expected_accuracy(
    const Architecture& arch, const TrainingScheme& scheme) const {
  return scheme_expected_accuracy(traits(arch), scheme);
}

ArchTraits TrainingSimulator::traits(const Architecture& arch) const {
  const double q = latent_quality(arch);
  ArchTraits traits;
  traits.reference_accuracy =
      kAccFloor + kAccRange * (1.0 - std::exp(-q / kQualityScale));

  const ModelIR ir = build_ir(arch, 224);
  traits.macs_224 = static_cast<double>(ir.total_macs());
  const double log_macs = std::log(traits.macs_224);
  traits.size_factor = std::clamp(
      (log_macs - kLogMacsMin) / (kLogMacsMax - kLogMacsMin), 0.0, 1.0);

  int total_depth = 0;
  double mean_expansion = 0.0;
  for (const auto& blk : arch.blocks) {
    total_depth += blk.layers;
    mean_expansion += blk.expansion;
  }
  mean_expansion /= kNumBlocks;
  traits.depth_norm =
      (total_depth - kNumBlocks) / static_cast<double>(2 * kNumBlocks);
  traits.expand_norm = (mean_expansion - 1.0) / 5.0;
  traits.res_wiggle = arch_noise_unit(arch, 2);
  traits.epoch_wiggle = arch_noise_unit(arch, 3);
  return traits;
}

double TrainingSimulator::training_cost_hours(
    const Architecture& arch, const TrainingScheme& scheme) const {
  return scheme_training_cost_hours(traits(arch), scheme);
}

TrainResult TrainingSimulator::train(const Architecture& arch,
                                     const TrainingScheme& scheme,
                                     std::uint64_t run_seed) const {
  TrainResult result;
  const double mean_acc = expected_accuracy(arch, scheme);
  const double sigma = scheme_seed_noise_sigma(scheme);
  Rng rng(hash_combine(
      hash_combine(hash_combine(world_seed_, arch.hash()), scheme.hash()),
      run_seed));
  result.top1 = std::clamp(mean_acc + sigma * rng.normal(), 0.001, 0.999);
  result.gpu_hours = training_cost_hours(arch, scheme);
  return result;
}

}  // namespace anb
