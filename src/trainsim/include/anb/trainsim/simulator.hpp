#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "anb/searchspace/architecture.hpp"
#include "anb/trainsim/curve.hpp"
#include "anb/trainsim/scheme.hpp"

namespace anb {

/// Result of one simulated training run.
struct TrainResult {
  double top1 = 0.0;       ///< ImageNet top-1 validation accuracy in [0, 1]
  double gpu_hours = 0.0;  ///< simulated single-GPU wall-clock training cost
};

/// Analytic substitute for training MnasNet-space models on ImageNet2012.
///
/// The real paper trains each architecture on a GPU cluster; that is the
/// unobtainable input here, so this simulator reproduces the *statistical
/// structure* that the paper's pipeline depends on:
///
///  1. Each architecture has a deterministic latent quality derived from its
///     structure (stage-weighted expansion/depth/kernel/SE contributions
///     with interactions, plus a hash-seeded idiosyncratic component that no
///     simple closed form can recover — the reason surrogates are imperfect).
///  2. Accuracy under a scheme follows a saturating power-law learning curve:
///     fewer epochs / lower resolution / larger batch cost accuracy, with
///     architecture-dependent sensitivity. Cheap schemes therefore *perturb
///     rankings*, which is exactly the trade-off the proxy search (Eq. 1)
///     navigates.
///  3. Per-seed evaluation noise shrinks with training length.
///  4. Training time follows an images × FLOPs / effective-throughput model
///     with batch-dependent device efficiency, so proxy speedups (the
///     paper's 5.6×) are measurable as simulated GPU-hours.
///
/// All stochastic components are derived from (world_seed, arch, scheme,
/// run seed), so any run is reproducible and independent of call order.
class TrainingSimulator {
 public:
  explicit TrainingSimulator(std::uint64_t world_seed = 42);

  /// Simulate one training run of `arch` under `scheme` with a given seed.
  TrainResult train(const Architecture& arch, const TrainingScheme& scheme,
                    std::uint64_t run_seed = 0) const;

  /// Noise-free accuracy under the reference scheme `r` — the "true"
  /// quantity the paper's rankings are judged against.
  double reference_accuracy(const Architecture& arch) const;

  /// Noise-free accuracy under an arbitrary scheme (mean over seeds).
  double expected_accuracy(const Architecture& arch,
                           const TrainingScheme& scheme) const;

  /// Simulated GPU-hours of one run (deterministic, no noise).
  double training_cost_hours(const Architecture& arch,
                             const TrainingScheme& scheme) const;

  /// Deterministic latent quality score (unbounded, higher is better).
  double latent_quality(const Architecture& arch) const;

  /// Top-1 accuracy drop from 8-bit post-training quantization — the paper
  /// quantizes all models for DPU deployment (§3.3.2). Small models and
  /// SE-heavy models (sigmoid gates with wide activation ranges) lose more;
  /// typical drops are a fraction of a percent.
  double int8_accuracy_drop(const Architecture& arch) const;

  std::uint64_t world_seed() const { return world_seed_; }

  /// Lower an architecture to the space-agnostic scheme-response traits
  /// consumed by the shared learning-curve model (anb/trainsim/curve.hpp).
  ArchTraits traits(const Architecture& arch) const;

 private:
  double arch_noise_unit(const Architecture& arch, std::uint64_t stream) const;

  /// A sparse conjunction effect: IF decisions take specific values THEN
  /// quality shifts by `weight`. Architecture-quality landscapes have such
  /// motif structure (specific op-combination effects); it is what gives
  /// tree ensembles their edge over kernel methods on this task (Table 1).
  struct Motif {
    std::array<int, 3> decision{};
    std::array<int, 3> option{};
    int arity = 2;
    double weight = 0.0;
  };

  std::uint64_t world_seed_;
  std::vector<Motif> motifs_;
};

}  // namespace anb
