#pragma once

#include "anb/trainsim/scheme.hpp"

namespace anb {

/// Architecture-level traits that determine how a model responds to a
/// training scheme. This decouples the *scheme response* (learning curves,
/// resolution/batch effects, cost model — shared by every search space)
/// from the *latent quality model* (space-specific): the MnasNet simulator
/// and the FBNet generalizability simulator both lower to these traits.
struct ArchTraits {
  /// Top-1 accuracy the model reaches under the reference scheme.
  double reference_accuracy = 0.7;
  /// Normalized model size in [0, 1] (log-MAC position within the space).
  double size_factor = 0.5;
  /// Normalized depth in [0, 1] (layers relative to the space's range).
  double depth_norm = 0.5;
  /// Normalized width/expansion in [0, 1].
  double expand_norm = 0.5;
  /// Idiosyncratic unit-normal draws perturbing the scheme response
  /// (resolution sensitivity / convergence speed); rank perturbation.
  double res_wiggle = 0.0;
  double epoch_wiggle = 0.0;
  /// Inference MACs at 224x224 (drives the training-cost model).
  double macs_224 = 3e8;
};

/// Expected accuracy of a model with `traits` trained under `scheme`:
/// reference accuracy minus resolution / under-training / batch /
/// progressive-resizing deficits (see TrainingSimulator docs).
double scheme_expected_accuracy(const ArchTraits& traits,
                                const TrainingScheme& scheme);

/// Per-seed evaluation noise (stddev) under `scheme`; shrinks with epochs.
double scheme_seed_noise_sigma(const TrainingScheme& scheme);

/// Simulated single-GPU training cost in hours: images x FLOPs over an
/// effective-throughput model with batch-dependent utilization.
double scheme_training_cost_hours(const ArchTraits& traits,
                                  const TrainingScheme& scheme);

}  // namespace anb
