#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "anb/util/json.hpp"

namespace anb {

/// A training scheme: the six hyperparameters the paper's proxy search
/// optimizes over (§3.2): batch size b, total epochs e_t, progressive-
/// resizing start/finish epochs e_s/e_f [7], and start/finish input
/// resolutions res_s/res_f.
///
/// The *reference* scheme `r` is a fixed high-fidelity recipe (the paper
/// uses a timm recipe); *proxified* schemes `p` trade accuracy for speed
/// while — ideally — preserving architecture rankings.
struct TrainingScheme {
  int batch_size = 512;
  int total_epochs = 200;
  int resize_start_epoch = 0;   ///< e_s: epoch where the resolution ramp starts
  int resize_finish_epoch = 0;  ///< e_f: epoch where res reaches res_finish
  int res_start = 224;
  int res_finish = 224;

  bool operator==(const TrainingScheme&) const = default;

  /// Input resolution used during 0-indexed epoch `epoch`: res_start before
  /// e_s, res_finish from e_f on, linear ramp in between.
  int resolution_at_epoch(int epoch) const;

  /// Throws anb::Error unless 0 <= e_s <= e_f <= e_t, resolutions in
  /// [32, 1024] with res_s <= res_f, batch in [1, 8192], e_t >= 1.
  void validate() const;

  /// Stable hash for seeding per-(arch, scheme) noise streams.
  std::uint64_t hash() const;

  std::string to_string() const;
  Json to_json() const;
  static TrainingScheme from_json(const Json& j);
};

/// The fixed high-fidelity reference scheme `r` (cannot be used for
/// benchmark construction at scale — that is the point of the paper).
TrainingScheme reference_scheme();

/// The categorical domains of the proxy-search space, in the order
/// {b, e_t, e_s, e_f, res_s, res_f} (paper §3.2: "categorical
/// hyperparameters with pre-specified values").
struct ProxyDomains {
  std::vector<int> batch_size{128, 256, 512, 1024};
  std::vector<int> total_epochs{10, 15, 20, 30, 50};
  std::vector<int> resize_start_epoch{0, 3, 5};
  std::vector<int> resize_finish_epoch{5, 10, 15, 20};
  std::vector<int> res_start{96, 128, 160, 192};
  std::vector<int> res_finish{160, 192, 224};

  /// All combinations with valid epoch/resolution ordering (e_s <= e_f <= e_t,
  /// res_s <= res_f). This is the grid the paper's grid search walks.
  std::vector<TrainingScheme> enumerate_valid() const;
};

}  // namespace anb
