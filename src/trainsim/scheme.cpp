#include "anb/trainsim/scheme.hpp"

#include <sstream>

#include "anb/util/error.hpp"
#include "anb/util/rng.hpp"

namespace anb {

int TrainingScheme::resolution_at_epoch(int epoch) const {
  ANB_CHECK(epoch >= 0 && epoch < total_epochs,
            "resolution_at_epoch: epoch out of range");
  if (epoch < resize_start_epoch) return res_start;
  if (epoch >= resize_finish_epoch) return res_finish;
  // Linear ramp over [e_s, e_f).
  const double t = static_cast<double>(epoch - resize_start_epoch) /
                   static_cast<double>(resize_finish_epoch - resize_start_epoch);
  return res_start + static_cast<int>(t * (res_finish - res_start));
}

void TrainingScheme::validate() const {
  ANB_CHECK(total_epochs >= 1, "TrainingScheme: total_epochs must be >= 1");
  ANB_CHECK(batch_size >= 1 && batch_size <= 8192,
            "TrainingScheme: batch_size must be in [1, 8192]");
  ANB_CHECK(resize_start_epoch >= 0,
            "TrainingScheme: resize_start_epoch must be >= 0");
  ANB_CHECK(resize_start_epoch <= resize_finish_epoch,
            "TrainingScheme: require e_s <= e_f");
  ANB_CHECK(resize_finish_epoch <= total_epochs,
            "TrainingScheme: require e_f <= e_t");
  ANB_CHECK(res_start >= 32 && res_finish <= 1024,
            "TrainingScheme: resolutions must be in [32, 1024]");
  ANB_CHECK(res_start <= res_finish, "TrainingScheme: require res_s <= res_f");
}

std::uint64_t TrainingScheme::hash() const {
  std::uint64_t h = 0x243F6A8885A308D3ULL;
  for (int v : {batch_size, total_epochs, resize_start_epoch,
                resize_finish_epoch, res_start, res_finish}) {
    h = hash_combine(h, static_cast<std::uint64_t>(v));
  }
  return h;
}

std::string TrainingScheme::to_string() const {
  std::ostringstream os;
  os << "b" << batch_size << "_e" << total_epochs << "_es" << resize_start_epoch
     << "_ef" << resize_finish_epoch << "_r" << res_start << "-" << res_finish;
  return os.str();
}

Json TrainingScheme::to_json() const {
  Json j = Json::object();
  j["batch_size"] = batch_size;
  j["total_epochs"] = total_epochs;
  j["resize_start_epoch"] = resize_start_epoch;
  j["resize_finish_epoch"] = resize_finish_epoch;
  j["res_start"] = res_start;
  j["res_finish"] = res_finish;
  return j;
}

TrainingScheme TrainingScheme::from_json(const Json& j) {
  TrainingScheme s;
  s.batch_size = j.at("batch_size").as_int();
  s.total_epochs = j.at("total_epochs").as_int();
  s.resize_start_epoch = j.at("resize_start_epoch").as_int();
  s.resize_finish_epoch = j.at("resize_finish_epoch").as_int();
  s.res_start = j.at("res_start").as_int();
  s.res_finish = j.at("res_finish").as_int();
  s.validate();
  return s;
}

TrainingScheme reference_scheme() {
  TrainingScheme r;
  r.batch_size = 512;
  r.total_epochs = 200;
  r.resize_start_epoch = 0;
  r.resize_finish_epoch = 0;
  r.res_start = 224;
  r.res_finish = 224;
  r.validate();
  return r;
}

std::vector<TrainingScheme> ProxyDomains::enumerate_valid() const {
  std::vector<TrainingScheme> out;
  for (int b : batch_size)
    for (int et : total_epochs)
      for (int es : resize_start_epoch)
        for (int ef : resize_finish_epoch)
          for (int rs : res_start)
            for (int rf : res_finish) {
              if (es > ef || ef > et || rs > rf) continue;
              TrainingScheme s;
              s.batch_size = b;
              s.total_epochs = et;
              s.resize_start_epoch = es;
              s.resize_finish_epoch = ef;
              s.res_start = rs;
              s.res_finish = rf;
              s.validate();
              out.push_back(s);
            }
  return out;
}

}  // namespace anb
