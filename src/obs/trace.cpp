#include "anb/obs/span.hpp"
#include "anb/obs/trace.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "anb/obs/registry.hpp"
#include "anb/util/error.hpp"
#include "anb/util/mutex.hpp"
#include "anb/util/thread_annotations.hpp"

namespace anb::obs {

namespace {

/// Hard cap on retained events; spans beyond it are counted as dropped.
/// ~1M events * ~100B keeps the worst case near 100MB.
constexpr std::uint64_t kMaxEvents = 1'000'000;

/// One recorded span. `parent` indexes the same event sequence (within a
/// live buffer: that buffer; after retirement/export: the merged vector) —
/// nesting is explicit, never reconstructed from timestamps.
struct TraceEvent {
  std::string name;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::int64_t parent = -1;
  std::uint32_t tid = 0;
  int n_args = 0;
  std::array<std::pair<const char*, double>, 2> args{};
};

std::uint64_t now_ns() {
  // The one sanctioned clock read: anb_lint's raw-timing check exempts
  // src/obs so all other code has to time through spans.
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

}  // namespace

namespace detail {

std::atomic<int> g_trace_enabled{[] {
  const char* env = std::getenv("ANB_TRACE");
  return (env != nullptr && *env != '\0') ? 1 : 0;
}()};

/// Per-thread event buffer. `stack` holds indices of currently open spans;
/// the top is the parent of the next span opened on this thread.
struct EventBuffer {
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
  std::vector<std::int64_t> stack;
};

}  // namespace detail

namespace {

struct TraceState {
  Mutex mu;
  // Buffer *pointers* are guarded; the events inside a live buffer belong
  // to its owning thread and are only read by others (collect_events)
  // under mu at quiescence — same discipline as the registry's shards.
  std::vector<detail::EventBuffer*> live ANB_GUARDED_BY(mu);
  // Parents remapped into this vector at retirement.
  std::vector<TraceEvent> retired ANB_GUARDED_BY(mu);
  std::vector<detail::EventBuffer*> free_buffers ANB_GUARDED_BY(mu);
  std::uint32_t next_tid ANB_GUARDED_BY(mu) = 1;
  // Plain atomics, deliberately outside the metrics registry: the event
  // cap depends on timing/thread interleaving, and a registry counter for
  // it would break the bit-identical counter contract.
  std::atomic<std::uint64_t> total_events{0};
  std::atomic<std::uint64_t> dropped{0};

  static TraceState& get() {
    static TraceState* state = new TraceState();  // leaked like the registry
    return *state;
  }
};

struct TlsEventBuffer {
  detail::EventBuffer* buffer = nullptr;

  ~TlsEventBuffer() {
    if (buffer == nullptr) return;
    TraceState& t = TraceState::get();
    MutexLock lock(t.mu);
    const std::int64_t base = static_cast<std::int64_t>(t.retired.size());
    for (TraceEvent& e : buffer->events) {
      if (e.parent >= 0) e.parent += base;
      t.retired.push_back(std::move(e));
    }
    buffer->events.clear();
    buffer->stack.clear();
    t.live.erase(std::find(t.live.begin(), t.live.end(), buffer));
    t.free_buffers.push_back(buffer);
    buffer = nullptr;
  }
};

thread_local TlsEventBuffer t_events;

detail::EventBuffer& local_buffer() {
  if (t_events.buffer == nullptr) {
    TraceState& t = TraceState::get();
    MutexLock lock(t.mu);
    if (!t.free_buffers.empty()) {
      t_events.buffer = t.free_buffers.back();
      t.free_buffers.pop_back();
    } else {
      t_events.buffer = new detail::EventBuffer();
    }
    t_events.buffer->tid = t.next_tid++;
    t.live.push_back(t_events.buffer);
  }
  return *t_events.buffer;
}

/// All events, retired threads first then live buffers in registration
/// order, parents remapped into the merged vector. Requires quiescence.
std::vector<TraceEvent> collect_events() {
  TraceState& t = TraceState::get();
  MutexLock lock(t.mu);
  std::vector<TraceEvent> out = t.retired;
  for (const detail::EventBuffer* buffer : t.live) {
    const std::int64_t base = static_cast<std::int64_t>(out.size());
    for (const TraceEvent& e : buffer->events) {
      out.push_back(e);
      if (out.back().parent >= 0) out.back().parent += base;
    }
  }
  return out;
}

void json_escape(std::ostringstream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

void set_trace_enabled(bool enabled) {
  detail::g_trace_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

Span::Span(const char* name) {
  if (!trace_enabled()) return;
  open(name, 0);
}

Span::Span(const std::string& name) {
  if (!trace_enabled()) return;
  open(name.c_str(), name.size());
}

void Span::open(const char* name, std::size_t /*length*/) {
  TraceState& t = TraceState::get();
  if (t.total_events.load(std::memory_order_relaxed) >= kMaxEvents) {
    t.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  t.total_events.fetch_add(1, std::memory_order_relaxed);
  detail::EventBuffer& buffer = local_buffer();
  TraceEvent event;
  event.name = name;
  event.ts_ns = now_ns();
  event.tid = buffer.tid;
  event.parent = buffer.stack.empty() ? -1 : buffer.stack.back();
  index_ = static_cast<std::int64_t>(buffer.events.size());
  buffer.events.push_back(std::move(event));
  buffer.stack.push_back(index_);
  buffer_ = &buffer;
}

Span::~Span() {
  if (buffer_ == nullptr) return;
  TraceEvent& event = buffer_->events[static_cast<std::size_t>(index_)];
  event.dur_ns = now_ns() - event.ts_ns;
  // Scoped spans close LIFO per thread, so the top of the stack is this
  // span; tolerate out-of-order closes from non-scoped usage anyway.
  auto& stack = buffer_->stack;
  if (!stack.empty() && stack.back() == index_) {
    stack.pop_back();
  } else {
    stack.erase(std::remove(stack.begin(), stack.end(), index_), stack.end());
  }
}

void Span::arg(const char* key, double value) {
  if (buffer_ == nullptr) return;
  TraceEvent& event = buffer_->events[static_cast<std::size_t>(index_)];
  if (event.n_args >= static_cast<int>(event.args.size())) return;
  event.args[static_cast<std::size_t>(event.n_args++)] = {key, value};
}

std::optional<std::string> requested_trace_path() {
  static const std::optional<std::string> path = [] {
    const char* env = std::getenv("ANB_TRACE");
    if (env == nullptr || *env == '\0') return std::optional<std::string>{};
    return std::optional<std::string>{std::string(env)};
  }();
  return path;
}

bool write_requested_trace() {
  const auto path = requested_trace_path();
  if (!path) return false;
  write_trace(*path);
  return true;
}

std::string trace_json_string() {
  const std::vector<TraceEvent> events = collect_events();
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    char buf[128];
    os << "{\"name\":\"";
    json_escape(os, e.name);
    // Chrome's trace viewer expects microseconds; keep ns resolution with
    // fractional values.
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                  "\"tid\":%u",
                  static_cast<double>(e.ts_ns) / 1e3,
                  static_cast<double>(e.dur_ns) / 1e3, e.tid);
    os << buf;
    if (e.n_args > 0) {
      os << ",\"args\":{";
      for (int a = 0; a < e.n_args; ++a) {
        if (a > 0) os << ",";
        os << "\"";
        json_escape(os, e.args[static_cast<std::size_t>(a)].first);
        std::snprintf(buf, sizeof(buf), "\":%.17g",
                      e.args[static_cast<std::size_t>(a)].second);
        os << buf;
      }
      os << "}";
    }
    os << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

void write_trace(const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ANB_CHECK(out.good(), "obs: cannot open trace for writing: " + path);
  out << trace_json_string();
  out.flush();
  ANB_CHECK(out.good(), "obs: failed writing trace: " + path);
}

void clear_trace_events() {
  TraceState& t = TraceState::get();
  MutexLock lock(t.mu);
  t.retired.clear();
  for (detail::EventBuffer* buffer : t.live) {
    ANB_CHECK(buffer->stack.empty(),
              "obs: clear_trace_events() with a span still open");
    buffer->events.clear();
  }
  t.total_events.store(0, std::memory_order_relaxed);
  t.dropped.store(0, std::memory_order_relaxed);
}

std::size_t trace_event_count() {
  TraceState& t = TraceState::get();
  MutexLock lock(t.mu);
  std::size_t n = t.retired.size();
  for (const detail::EventBuffer* buffer : t.live) n += buffer->events.size();
  return n;
}

std::uint64_t trace_dropped_count() {
  return TraceState::get().dropped.load(std::memory_order_relaxed);
}

namespace {

/// Aggregation node for the text report: spans with the same name under
/// the same parent path merge into one line.
struct ReportNode {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::map<std::string, ReportNode> children;  // sorted by name
};

void print_node(std::ostringstream& os, const std::string& name,
                const ReportNode& node, int depth, bool include_timing) {
  for (int i = 0; i < depth; ++i) os << "  ";
  os << name << "  count=" << node.count;
  if (include_timing) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  total=%.3fms  mean=%.3fms",
                  static_cast<double>(node.total_ns) / 1e6,
                  node.count == 0
                      ? 0.0
                      : static_cast<double>(node.total_ns) / 1e6 /
                            static_cast<double>(node.count));
    os << buf;
  }
  os << "\n";
  for (const auto& [child_name, child] : node.children) {
    print_node(os, child_name, child, depth + 1, include_timing);
  }
}

}  // namespace

std::string report_text(const ReportOptions& options) {
  const std::vector<TraceEvent> events = collect_events();
  ReportNode root;
  // A parent always precedes its children in the merged vector (spans open
  // parent-first on one thread; retirement/collection preserve per-buffer
  // order and parents never cross buffers), so one forward pass suffices.
  std::vector<ReportNode*> node_of(events.size(), nullptr);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    ReportNode& parent =
        e.parent < 0 ? root : *node_of[static_cast<std::size_t>(e.parent)];
    ReportNode& node = parent.children[e.name];
    node.count += 1;
    node.total_ns += e.dur_ns;
    node_of[i] = &node;
  }

  std::ostringstream os;
  os << "== spans ==\n";
  if (root.children.empty()) os << "(no spans recorded)\n";
  for (const auto& [name, node] : root.children) {
    print_node(os, name, node, 0, options.include_timing);
  }
  os << "== metrics ==\n";
  for (const MetricValue& v : snapshot_metrics()) {
    switch (v.kind) {
      case MetricKind::kCounter:
        os << v.name << " = " << v.value << "\n";
        break;
      case MetricKind::kGauge:
        if (options.include_timing) {  // gauges are timing-derived
          char buf[64];
          std::snprintf(buf, sizeof(buf), "%.6g", v.gauge_value);
          os << v.name << " = " << buf << "\n";
        }
        break;
      case MetricKind::kHistogram: {
        os << v.name << ": count=" << v.value << " sum=" << v.sum
           << " buckets=[";
        bool first = true;
        for (std::size_t b = 0; b < v.buckets.size(); ++b) {
          if (v.buckets[b] == 0) continue;
          if (!first) os << " ";
          first = false;
          os << b << ":" << v.buckets[b];
        }
        os << "]\n";
        break;
      }
    }
  }
  return os.str();
}

}  // namespace anb::obs
