#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

/// RAII timing spans. A Span records one wall-clock interval into the
/// calling thread's event buffer; spans on the same thread nest by scope
/// (the enclosing open span becomes the parent), and the buffers are
/// exported by anb/obs/trace.hpp as chrome://tracing JSON or a hierarchical
/// text report.
///
/// When tracing is disabled (the default unless ANB_TRACE is set in the
/// environment or set_trace_enabled(true) is called), constructing a Span
/// costs a single relaxed atomic load — the same disarmed fast path as
/// anb::fault and the metrics registry.
///
/// Span durations are wall-clock and therefore nondeterministic; they are
/// explicitly outside the determinism contract that covers counters.
/// A Span must be destroyed on the thread that constructed it (guaranteed
/// by scoped usage via ANB_SPAN).
namespace anb::obs {

namespace detail {
struct EventBuffer;
extern std::atomic<int> g_trace_enabled;  // 0 by default; 1 if ANB_TRACE set
}  // namespace detail

/// True when spans record events. A single relaxed atomic load.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed) != 0;
}

/// Enable/disable span recording process-wide. Enabling mid-run is safe;
/// spans opened while disabled simply record nothing.
void set_trace_enabled(bool enabled);

class Span {
 public:
  explicit Span(const char* name);
  explicit Span(const std::string& name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&&) = delete;
  Span& operator=(Span&&) = delete;

  /// Attach a numeric argument to the event (shows under "args" in the
  /// chrome trace). At most 2 per span; extras are dropped.
  void arg(const char* key, double value);

 private:
  void open(const char* name, std::size_t length);
  detail::EventBuffer* buffer_ = nullptr;
  std::int64_t index_ = -1;
};

}  // namespace anb::obs

// NOLINTBEGIN(cppcoreguidelines-macro-usage)
#define ANB_OBS_CONCAT_INNER(a, b) a##b
#define ANB_OBS_CONCAT(a, b) ANB_OBS_CONCAT_INNER(a, b)

/// Open a scoped span: ANB_SPAN("anb.fit.histgbdt");
#define ANB_SPAN(...) \
  ::anb::obs::Span ANB_OBS_CONCAT(anb_obs_span_, __COUNTER__)(__VA_ARGS__)
// NOLINTEND(cppcoreguidelines-macro-usage)
