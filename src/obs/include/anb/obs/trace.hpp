#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

/// Export sinks for the span event buffers (anb/obs/span.hpp) and the
/// metrics registry (anb/obs/registry.hpp):
///
///   - chrome://tracing JSON ("trace event format", phase "X" complete
///     events) — load the file in chrome://tracing or https://ui.perfetto.dev
///   - a plain-text hierarchical report (span tree + metric catalogue)
///
/// All exports require quiescence: call them after parallel work has
/// joined, never while spans may still be open on other threads.
namespace anb::obs {

/// The value of the ANB_TRACE environment variable (read once at startup),
/// or nullopt when unset/empty. When set, tracing starts enabled.
std::optional<std::string> requested_trace_path();

/// If ANB_TRACE was set, write the chrome trace there (creating parent
/// directories) and return true; otherwise do nothing and return false.
/// Call at the end of main() in binaries that support tracing.
bool write_requested_trace();

/// Chrome trace event format JSON for every recorded span.
std::string trace_json_string();

/// Write trace_json_string() to `path`, creating parent directories.
void write_trace(const std::string& path);

/// Drop all recorded events (live buffers and retired threads) and reset
/// the dropped-event count. Requires quiescence and no open spans.
void clear_trace_events();

/// Number of recorded events across all threads (open spans included).
std::size_t trace_event_count();

/// Events dropped after the in-memory cap was reached. Kept as a plain
/// atomic outside the registry so the cap cannot perturb the deterministic
/// counter contract.
std::uint64_t trace_dropped_count();

struct ReportOptions {
  /// Include wall-clock durations and gauges. Disable to get a
  /// deterministic report (span structure + counts + counters only) —
  /// this is what the golden-report test pins.
  bool include_timing = true;
};

/// Plain-text hierarchical report: the span tree (children sorted by name,
/// call counts, optionally total/mean durations) followed by the merged
/// metric catalogue.
std::string report_text(const ReportOptions& options = {});

}  // namespace anb::obs
