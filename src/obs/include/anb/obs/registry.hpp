#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// anb::obs — deterministic metrics registry.
///
/// Counters and histograms accumulate into thread-local shards; reading a
/// value merges the shards serially (retired threads first, then live
/// shards in registration order — the same reduction discipline as
/// CollectionReport). Because every cell is an unsigned 64-bit sum and
/// addition is commutative and associative over uint64, counter values are
/// bit-identical across thread counts. Span durations (anb/obs/span.hpp)
/// are explicitly exempt from this contract; counters are not.
///
/// The disarmed fast path mirrors anb::fault: when metrics are disabled,
/// every update is a single relaxed atomic load and a branch.
///
/// Handles returned by counter()/gauge()/histogram() are stable references
/// into the process-wide registry; the registration itself takes a mutex,
/// so call sites cache the handle:
///
///   static obs::Counter& hits = obs::counter("anb.query.cache.hits");
///   hits.add(1);
namespace anb::obs {

namespace detail {
struct RegistryImpl;
extern std::atomic<int> g_metrics_enabled;  // 1 by default
}  // namespace detail

/// True when metric updates are recorded. A single relaxed atomic load —
/// the disabled path costs one branch, like anb::fault::any_armed().
inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed) != 0;
}

/// Enable/disable metric recording process-wide. Reads of already-recorded
/// values are unaffected. Metrics are enabled by default.
void set_metrics_enabled(bool enabled);

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* metric_kind_name(MetricKind kind);  // "counter"/"gauge"/"histogram"

/// Monotonic unsigned sum. add() touches only the calling thread's shard;
/// value() merges all shards under the registry mutex.
class Counter {
 public:
  void add(std::uint64_t n = 1);
  void increment() { add(1); }
  /// Merged value. Deterministic only at quiescence (no concurrent add()).
  std::uint64_t value() const;
  const std::string& name() const;

 private:
  friend struct detail::RegistryImpl;
  Counter(std::size_t metric, std::size_t cell) : metric_(metric), cell_(cell) {}
  std::size_t metric_;
  std::size_t cell_;
};

/// Last-write-wins double. Gauges are process-global (one atomic slot, not
/// sharded) — use them for point-in-time values like rows/sec, never for
/// anything covered by the determinism contract.
class Gauge {
 public:
  void set(double value);
  double value() const;
  const std::string& name() const;

 private:
  friend struct detail::RegistryImpl;
  Gauge(std::size_t metric, std::atomic<std::uint64_t>* slot)
      : metric_(metric), slot_(slot) {}
  std::size_t metric_;
  std::atomic<std::uint64_t>* slot_;
};

/// Number of log2 buckets in a histogram: bucket 0 counts zeros, bucket k
/// (1 <= k <= 16) counts values in [2^(k-1), 2^k), bucket 17 is overflow.
inline constexpr std::size_t kHistogramBuckets = 18;

/// Log2-bucketed distribution of unsigned values plus an exact sum, all
/// held in shard cells, so histogram counts obey the same thread-count
/// invariance as counters.
class Histogram {
 public:
  void observe(std::uint64_t value);
  /// Merged per-bucket counts (size kHistogramBuckets), count and sum.
  std::vector<std::uint64_t> buckets() const;
  std::uint64_t count() const;
  std::uint64_t sum() const;
  const std::string& name() const;

 private:
  friend struct detail::RegistryImpl;
  Histogram(std::size_t metric, std::size_t cell)
      : metric_(metric), cell_(cell) {}
  std::size_t metric_;
  std::size_t cell_;
};

/// Look up or register a metric by name. Throws anb::Error if the name is
/// already registered with a different kind. The returned reference is
/// stable for the life of the process.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

/// One merged metric value, as produced by snapshot_metrics().
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;               // counters: merged sum
  double gauge_value = 0.0;              // gauges only
  std::vector<std::uint64_t> buckets;    // histograms only
  std::uint64_t sum = 0;                 // histograms only
};

/// Merged snapshot of every registered metric, sorted by name (registration
/// order can differ across runs; name order cannot). Deterministic only at
/// quiescence — callers snapshot after joins, never mid-parallel_for.
std::vector<MetricValue> snapshot_metrics();

/// Zero every counter/histogram cell and gauge slot. Callers must be
/// quiescent (no concurrent updates); registrations are kept.
void reset_metrics();

/// CSV dump of snapshot_metrics(): header `metric,kind,value` followed by
/// one row per counter/gauge and per-bucket rows for histograms.
std::string metrics_csv_string();

/// Write metrics_csv_string() to `path`, creating parent directories.
void write_metrics_csv(const std::string& path);

}  // namespace anb::obs
