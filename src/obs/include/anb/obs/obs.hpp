#pragma once

/// Umbrella header for the anb::obs observability layer: metrics registry,
/// RAII timing spans, and export sinks. See DESIGN.md "Observability".

#include "anb/obs/registry.hpp"  // IWYU pragma: export
#include "anb/obs/span.hpp"      // IWYU pragma: export
#include "anb/obs/trace.hpp"     // IWYU pragma: export
