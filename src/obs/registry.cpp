#include "anb/obs/registry.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "anb/util/error.hpp"
#include "anb/util/mutex.hpp"
#include "anb/util/thread_annotations.hpp"

namespace anb::obs {

namespace detail {

std::atomic<int> g_metrics_enabled{1};

}  // namespace detail

namespace {

/// Cells per histogram: kHistogramBuckets bucket counts plus the exact sum.
constexpr std::size_t kHistogramCells = kHistogramBuckets + 1;

/// One thread's private accumulation cells. Indexed by the absolute cell
/// offsets handed out at registration; grown lazily by the owning thread,
/// so growth needs no lock (the vector is only read by other threads under
/// the registry mutex at merge time, and merges require quiescence).
struct Shard {
  std::vector<std::uint64_t> cells;
};

struct MetricMeta {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::size_t handle = 0;  // index into the kind's handle deque
  std::size_t cell = 0;    // first shard cell (counters/histograms)
};

}  // namespace

namespace detail {

/// Process-wide registry. Leaked on purpose (like fault.cpp's Registry) so
/// metric updates from late-destroyed threads never race a destructor.
/// Everything the mutex guards says so in its declaration; the *_locked
/// helpers carry ANB_REQUIRES(mu), so a call path that forgets the lock is
/// a compile error under -Wthread-safety.
struct RegistryImpl {
  Mutex mu;
  // name -> meta id; std::less<> enables string_view lookups.
  std::map<std::string, std::size_t, std::less<>> index ANB_GUARDED_BY(mu);
  // A deque, not a vector: metric_name() hands out references to the names
  // stored here, which must survive later registrations (a vector's
  // reallocation would move the strings and dangle every handed-out name).
  std::deque<MetricMeta> metas ANB_GUARDED_BY(mu);
  std::size_t n_cells ANB_GUARDED_BY(mu) = 0;  // total shard cells handed out

  // Handles live in deques so references stay stable across registration.
  std::deque<Counter> counters ANB_GUARDED_BY(mu);
  std::deque<Gauge> gauges ANB_GUARDED_BY(mu);
  std::deque<Histogram> histograms ANB_GUARDED_BY(mu);
  std::deque<std::atomic<std::uint64_t>> gauge_slots ANB_GUARDED_BY(mu);

  // Shard lifecycle: live shards in registration order, a serial
  // accumulation of dead threads' cells, and a freelist so the short-lived
  // workers parallel_for spawns per call recycle storage instead of
  // growing it without bound. The cells *inside* a live shard are written
  // lock-free by their owning thread (that is the whole point of sharding)
  // and only read by others under mu at merge time — so the pointers are
  // guarded, the pointees deliberately are not.
  std::vector<Shard*> live ANB_GUARDED_BY(mu);
  std::vector<std::uint64_t> retired ANB_GUARDED_BY(mu);
  std::vector<Shard*> free_shards ANB_GUARDED_BY(mu);

  static RegistryImpl& get() {
    static RegistryImpl* impl = new RegistryImpl();
    return *impl;
  }

  /// Merged value of one cell: retired threads first, then live shards in
  /// registration order. Serial, so the reduction order is fixed (and for
  /// uint64 sums, order is irrelevant anyway — this mirrors the
  /// CollectionReport discipline for clarity, not correctness).
  std::uint64_t merged_cell_locked(std::size_t cell) const ANB_REQUIRES(mu) {
    std::uint64_t total = cell < retired.size() ? retired[cell] : 0;
    for (const Shard* shard : live) {
      if (cell < shard->cells.size()) total += shard->cells[cell];
    }
    return total;
  }

  const std::string& metric_name(std::size_t metric) {
    MutexLock lock(mu);
    return metas[metric].name;
  }

  /// Find-or-register under the lock; returns the meta index. Throws on a
  /// kind mismatch for an existing name.
  std::size_t register_locked(std::string_view name, MetricKind kind)
      ANB_REQUIRES(mu) {
    ANB_CHECK(!name.empty(), "obs: metric name must be non-empty");
    auto it = index.find(name);
    if (it != index.end()) {
      const MetricMeta& meta = metas[it->second];
      ANB_CHECK(meta.kind == kind,
                "obs: metric '" + std::string(name) +
                    "' already registered as " +
                    std::string(metric_kind_name(meta.kind)));
      return it->second;
    }
    MetricMeta meta;
    meta.name = std::string(name);
    meta.kind = kind;
    meta.cell = n_cells;
    switch (kind) {
      case MetricKind::kCounter:
        meta.handle = counters.size();
        counters.push_back(Counter(metas.size(), n_cells));
        n_cells += 1;
        break;
      case MetricKind::kGauge:
        meta.handle = gauges.size();
        gauge_slots.emplace_back(0);
        gauges.push_back(Gauge(metas.size(), &gauge_slots.back()));
        break;
      case MetricKind::kHistogram:
        meta.handle = histograms.size();
        histograms.push_back(Histogram(metas.size(), n_cells));
        n_cells += kHistogramCells;
        break;
    }
    const std::size_t id = metas.size();
    metas.push_back(std::move(meta));
    index.emplace(metas.back().name, id);
    return id;
  }
};

}  // namespace detail

namespace {

using detail::RegistryImpl;

/// Thread-local shard holder; the destructor retires the shard's cells
/// into the registry's serial accumulator and recycles the storage.
struct TlsShard {
  Shard* shard = nullptr;

  ~TlsShard() {
    if (shard == nullptr) return;
    RegistryImpl& r = RegistryImpl::get();
    MutexLock lock(r.mu);
    if (r.retired.size() < shard->cells.size()) {
      r.retired.resize(shard->cells.size(), 0);
    }
    for (std::size_t i = 0; i < shard->cells.size(); ++i) {
      r.retired[i] += shard->cells[i];
    }
    std::fill(shard->cells.begin(), shard->cells.end(), 0);
    r.live.erase(std::find(r.live.begin(), r.live.end(), shard));
    r.free_shards.push_back(shard);
    shard = nullptr;
  }
};

thread_local TlsShard t_shard;

Shard& local_shard() {
  if (t_shard.shard == nullptr) {
    RegistryImpl& r = RegistryImpl::get();
    MutexLock lock(r.mu);
    if (!r.free_shards.empty()) {
      t_shard.shard = r.free_shards.back();
      r.free_shards.pop_back();
    } else {
      t_shard.shard = new Shard();
    }
    r.live.push_back(t_shard.shard);
  }
  return *t_shard.shard;
}

/// Grow-on-demand cell access within the calling thread's shard.
std::uint64_t& shard_cell(Shard& shard, std::size_t cell) {
  if (shard.cells.size() <= cell) shard.cells.resize(cell + 1, 0);
  return shard.cells[cell];
}

std::size_t histogram_bucket(std::uint64_t value) {
  if (value == 0) return 0;
  return std::min<std::size_t>(kHistogramBuckets - 1, std::bit_width(value));
}

}  // namespace

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  throw Error("obs: unknown MetricKind");
}

void set_metrics_enabled(bool enabled) {
  detail::g_metrics_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void Counter::add(std::uint64_t n) {
  if (!metrics_enabled()) return;
  shard_cell(local_shard(), cell_) += n;
}

std::uint64_t Counter::value() const {
  RegistryImpl& r = RegistryImpl::get();
  MutexLock lock(r.mu);
  return r.merged_cell_locked(cell_);
}

const std::string& Counter::name() const {
  return RegistryImpl::get().metric_name(metric_);
}

void Gauge::set(double value) {
  if (!metrics_enabled()) return;
  slot_->store(std::bit_cast<std::uint64_t>(value), std::memory_order_relaxed);
}

double Gauge::value() const {
  return std::bit_cast<double>(slot_->load(std::memory_order_relaxed));
}

const std::string& Gauge::name() const {
  return RegistryImpl::get().metric_name(metric_);
}

void Histogram::observe(std::uint64_t value) {
  if (!metrics_enabled()) return;
  Shard& shard = local_shard();
  // Touch the last cell first so one resize covers the whole span.
  shard_cell(shard, cell_ + kHistogramBuckets) += value;  // exact sum
  shard.cells[cell_ + histogram_bucket(value)] += 1;
}

std::vector<std::uint64_t> Histogram::buckets() const {
  RegistryImpl& r = RegistryImpl::get();
  MutexLock lock(r.mu);
  std::vector<std::uint64_t> out(kHistogramBuckets, 0);
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    out[b] = r.merged_cell_locked(cell_ + b);
  }
  return out;
}

std::uint64_t Histogram::count() const {
  RegistryImpl& r = RegistryImpl::get();
  MutexLock lock(r.mu);
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    total += r.merged_cell_locked(cell_ + b);
  }
  return total;
}

std::uint64_t Histogram::sum() const {
  RegistryImpl& r = RegistryImpl::get();
  MutexLock lock(r.mu);
  return r.merged_cell_locked(cell_ + kHistogramBuckets);
}

const std::string& Histogram::name() const {
  return RegistryImpl::get().metric_name(metric_);
}

Counter& counter(std::string_view name) {
  RegistryImpl& r = RegistryImpl::get();
  MutexLock lock(r.mu);
  const std::size_t id = r.register_locked(name, MetricKind::kCounter);
  return r.counters[r.metas[id].handle];
}

Gauge& gauge(std::string_view name) {
  RegistryImpl& r = RegistryImpl::get();
  MutexLock lock(r.mu);
  const std::size_t id = r.register_locked(name, MetricKind::kGauge);
  return r.gauges[r.metas[id].handle];
}

Histogram& histogram(std::string_view name) {
  RegistryImpl& r = RegistryImpl::get();
  MutexLock lock(r.mu);
  const std::size_t id = r.register_locked(name, MetricKind::kHistogram);
  return r.histograms[r.metas[id].handle];
}

std::vector<MetricValue> snapshot_metrics() {
  RegistryImpl& r = RegistryImpl::get();
  MutexLock lock(r.mu);
  std::vector<MetricValue> out;
  out.reserve(r.metas.size());
  for (const MetricMeta& meta : r.metas) {
    MetricValue v;
    v.name = meta.name;
    v.kind = meta.kind;
    switch (meta.kind) {
      case MetricKind::kCounter:
        v.value = r.merged_cell_locked(meta.cell);
        break;
      case MetricKind::kGauge:
        v.gauge_value = r.gauges[meta.handle].value();
        break;
      case MetricKind::kHistogram: {
        const std::size_t base = meta.cell;
        v.buckets.resize(kHistogramBuckets);
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
          v.buckets[b] = r.merged_cell_locked(base + b);
          v.value += v.buckets[b];
        }
        v.sum = r.merged_cell_locked(base + kHistogramBuckets);
        break;
      }
    }
    out.push_back(std::move(v));
  }
  // Registration order can vary run to run (thread interleaving at first
  // touch); name order cannot.
  std::sort(out.begin(), out.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return out;
}

void reset_metrics() {
  RegistryImpl& r = RegistryImpl::get();
  MutexLock lock(r.mu);
  std::fill(r.retired.begin(), r.retired.end(), 0);
  for (Shard* shard : r.live) {
    std::fill(shard->cells.begin(), shard->cells.end(), 0);
  }
  for (auto& slot : r.gauge_slots) {
    slot.store(0, std::memory_order_relaxed);
  }
}

std::string metrics_csv_string() {
  std::ostringstream os;
  os << "metric,kind,value\n";
  for (const MetricValue& v : snapshot_metrics()) {
    switch (v.kind) {
      case MetricKind::kCounter:
        os << v.name << ",counter," << v.value << "\n";
        break;
      case MetricKind::kGauge: {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", v.gauge_value);
        os << v.name << ",gauge," << buf << "\n";
        break;
      }
      case MetricKind::kHistogram:
        os << v.name << ".count,histogram," << v.value << "\n";
        os << v.name << ".sum,histogram," << v.sum << "\n";
        for (std::size_t b = 0; b < v.buckets.size(); ++b) {
          if (v.buckets[b] == 0) continue;  // sparse: most buckets are empty
          os << v.name << ".bucket" << b << ",histogram," << v.buckets[b]
             << "\n";
        }
        break;
    }
  }
  return os.str();
}

void write_metrics_csv(const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ANB_CHECK(out.good(), "obs: cannot open metrics CSV for writing: " + path);
  out << metrics_csv_string();
  out.flush();
  ANB_CHECK(out.good(), "obs: failed writing metrics CSV: " + path);
}

}  // namespace anb::obs
