#include "anb/trainsim/scheme.hpp"

#include <gtest/gtest.h>

#include "anb/util/error.hpp"

namespace anb {
namespace {

TrainingScheme make_scheme(int b, int et, int es, int ef, int rs, int rf) {
  TrainingScheme s;
  s.batch_size = b;
  s.total_epochs = et;
  s.resize_start_epoch = es;
  s.resize_finish_epoch = ef;
  s.res_start = rs;
  s.res_finish = rf;
  return s;
}

TEST(SchemeTest, ReferenceSchemeIsValidAndConstantRes) {
  const TrainingScheme r = reference_scheme();
  EXPECT_NO_THROW(r.validate());
  EXPECT_EQ(r.total_epochs, 200);
  for (int e = 0; e < r.total_epochs; e += 17)
    EXPECT_EQ(r.resolution_at_epoch(e), 224);
}

TEST(SchemeTest, ValidationCatchesOrderingErrors) {
  EXPECT_THROW(make_scheme(512, 10, 5, 3, 160, 224).validate(), Error);  // es>ef
  EXPECT_THROW(make_scheme(512, 10, 0, 12, 160, 224).validate(), Error); // ef>et
  EXPECT_THROW(make_scheme(512, 10, 0, 5, 224, 160).validate(), Error);  // rs>rf
  EXPECT_THROW(make_scheme(0, 10, 0, 5, 160, 224).validate(), Error);
  EXPECT_THROW(make_scheme(512, 0, 0, 0, 160, 224).validate(), Error);
  EXPECT_THROW(make_scheme(512, 10, -1, 5, 160, 224).validate(), Error);
  EXPECT_THROW(make_scheme(512, 10, 0, 5, 16, 224).validate(), Error);
}

TEST(SchemeTest, ProgressiveResolutionRamp) {
  const TrainingScheme s = make_scheme(512, 20, 5, 15, 128, 224);
  EXPECT_EQ(s.resolution_at_epoch(0), 128);
  EXPECT_EQ(s.resolution_at_epoch(4), 128);
  EXPECT_EQ(s.resolution_at_epoch(15), 224);
  EXPECT_EQ(s.resolution_at_epoch(19), 224);
  // Monotone non-decreasing in between.
  int prev = 0;
  for (int e = 0; e < 20; ++e) {
    const int res = s.resolution_at_epoch(e);
    EXPECT_GE(res, prev);
    prev = res;
  }
  EXPECT_THROW(s.resolution_at_epoch(20), Error);
  EXPECT_THROW(s.resolution_at_epoch(-1), Error);
}

TEST(SchemeTest, DegenerateRampJumpsAtStart) {
  const TrainingScheme s = make_scheme(512, 10, 3, 3, 128, 224);
  EXPECT_EQ(s.resolution_at_epoch(2), 128);
  EXPECT_EQ(s.resolution_at_epoch(3), 224);
}

TEST(SchemeTest, HashDistinguishesSchemes) {
  const auto a = make_scheme(512, 20, 0, 10, 160, 224);
  auto b = a;
  EXPECT_EQ(a.hash(), b.hash());
  b.res_start = 128;
  EXPECT_NE(a.hash(), b.hash());
}

TEST(SchemeTest, JsonRoundTrip) {
  const auto s = make_scheme(256, 30, 5, 20, 128, 192);
  EXPECT_EQ(TrainingScheme::from_json(s.to_json()), s);
}

TEST(SchemeTest, JsonRejectsInvalid) {
  auto j = make_scheme(256, 30, 5, 20, 128, 192).to_json();
  j["resize_finish_epoch"] = 40;  // > total_epochs
  EXPECT_THROW(TrainingScheme::from_json(j), Error);
}

TEST(SchemeTest, ToStringMentionsAllFields) {
  const std::string s = make_scheme(256, 30, 5, 20, 128, 192).to_string();
  EXPECT_NE(s.find("b256"), std::string::npos);
  EXPECT_NE(s.find("e30"), std::string::npos);
  EXPECT_NE(s.find("128-192"), std::string::npos);
}

TEST(ProxyDomainsTest, EnumerationRespectsConstraints) {
  ProxyDomains domains;
  const auto schemes = domains.enumerate_valid();
  EXPECT_GT(schemes.size(), 100u);
  for (const auto& s : schemes) {
    EXPECT_NO_THROW(s.validate());
    EXPECT_LE(s.resize_start_epoch, s.resize_finish_epoch);
    EXPECT_LE(s.resize_finish_epoch, s.total_epochs);
    EXPECT_LE(s.res_start, s.res_finish);
  }
}

TEST(ProxyDomainsTest, EnumerationCountsMatchFiltering) {
  ProxyDomains domains;
  domains.batch_size = {512};
  domains.total_epochs = {10};
  domains.resize_start_epoch = {0, 5};
  domains.resize_finish_epoch = {5, 10, 15};
  domains.res_start = {128};
  domains.res_finish = {224};
  // (es=0: ef in {5,10}; es=5: ef in {5,10}) = 4 valid combos (ef=15 > et).
  EXPECT_EQ(domains.enumerate_valid().size(), 4u);
}

}  // namespace
}  // namespace anb
