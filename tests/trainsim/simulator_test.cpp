#include "anb/trainsim/simulator.hpp"

#include <gtest/gtest.h>

#include "anb/searchspace/space.hpp"
#include "anb/searchspace/zoo.hpp"
#include "anb/util/metrics.hpp"
#include "anb/util/stats.hpp"

namespace anb {
namespace {

TrainingScheme proxy_scheme(int epochs, int res_finish) {
  TrainingScheme s;
  s.batch_size = 512;
  s.total_epochs = epochs;
  s.resize_start_epoch = 0;
  s.resize_finish_epoch = 0;
  s.res_start = res_finish;
  s.res_finish = res_finish;
  return s;
}

class SimulatorTest : public ::testing::Test {
 protected:
  TrainingSimulator sim_{42};
  Rng rng_{7};
};

TEST_F(SimulatorTest, DeterministicAcrossInstances) {
  TrainingSimulator other(42);
  const Architecture a = MnasSpace::to_blocks(MnasSpace::instance().sample(rng_));
  const auto r1 = sim_.train(a, reference_scheme(), 3);
  const auto r2 = other.train(a, reference_scheme(), 3);
  EXPECT_DOUBLE_EQ(r1.top1, r2.top1);
  EXPECT_DOUBLE_EQ(r1.gpu_hours, r2.gpu_hours);
}

TEST_F(SimulatorTest, WorldSeedChangesLandscape) {
  TrainingSimulator other(43);
  // Latent quality differs between worlds for at least some architectures.
  int diffs = 0;
  for (int i = 0; i < 20; ++i) {
    const Architecture a = MnasSpace::to_blocks(MnasSpace::instance().sample(rng_));
    diffs += std::abs(sim_.latent_quality(a) - other.latent_quality(a)) > 1e-6;
  }
  EXPECT_GT(diffs, 15);
}

TEST_F(SimulatorTest, SeedNoiseIsSmallAndZeroMeanIsh) {
  const Architecture a = MnasSpace::to_blocks(MnasSpace::instance().sample(rng_));
  const double expected = sim_.expected_accuracy(a, reference_scheme());
  std::vector<double> runs;
  for (int s = 0; s < 40; ++s)
    runs.push_back(sim_.train(a, reference_scheme(), s).top1);
  EXPECT_NEAR(mean(runs), expected, 0.002);
  EXPECT_LT(stddev(runs), 0.006);
  EXPECT_GT(stddev(runs), 0.0002);
}

TEST_F(SimulatorTest, MoreEpochsMeansHigherAccuracy) {
  for (int i = 0; i < 10; ++i) {
    const Architecture a = MnasSpace::to_blocks(MnasSpace::instance().sample(rng_));
    const double a10 = sim_.expected_accuracy(a, proxy_scheme(10, 224));
    const double a50 = sim_.expected_accuracy(a, proxy_scheme(50, 224));
    const double a200 = sim_.expected_accuracy(a, proxy_scheme(200, 224));
    EXPECT_LT(a10, a50);
    EXPECT_LT(a50, a200);
  }
}

TEST_F(SimulatorTest, HigherResolutionMeansHigherAccuracy) {
  for (int i = 0; i < 10; ++i) {
    const Architecture a = MnasSpace::to_blocks(MnasSpace::instance().sample(rng_));
    EXPECT_LT(sim_.expected_accuracy(a, proxy_scheme(30, 160)),
              sim_.expected_accuracy(a, proxy_scheme(30, 224)));
  }
}

TEST_F(SimulatorTest, HugeBatchCostsAccuracy) {
  const Architecture a = MnasSpace::to_blocks(MnasSpace::instance().sample(rng_));
  auto big = proxy_scheme(30, 224);
  big.batch_size = 4096;
  EXPECT_LT(sim_.expected_accuracy(a, big),
            sim_.expected_accuracy(a, proxy_scheme(30, 224)));
}

TEST_F(SimulatorTest, AccuracyInValidRange) {
  for (int i = 0; i < 50; ++i) {
    const Architecture a = MnasSpace::to_blocks(MnasSpace::instance().sample(rng_));
    const double acc = sim_.train(a, proxy_scheme(10, 160), i).top1;
    EXPECT_GT(acc, 0.0);
    EXPECT_LT(acc, 1.0);
  }
}

TEST_F(SimulatorTest, ReferenceAccuracyRealisticRange) {
  // ImageNet top-1 for this space: roughly 55-80%.
  for (int i = 0; i < 100; ++i) {
    const Architecture a = MnasSpace::to_blocks(MnasSpace::instance().sample(rng_));
    const double acc = sim_.reference_accuracy(a);
    EXPECT_GT(acc, 0.50);
    EXPECT_LT(acc, 0.85);
  }
  EXPECT_GT(sim_.reference_accuracy(effnet_b0_like().arch), 0.74);
}

TEST_F(SimulatorTest, CapacityImprovesQuality) {
  Architecture small, big;
  for (auto& b : small.blocks) b = BlockConfig{1, 3, 1, false};
  for (auto& b : big.blocks) b = BlockConfig{6, 5, 3, true};
  EXPECT_GT(sim_.latent_quality(big), sim_.latent_quality(small) + 1.0);
  EXPECT_GT(sim_.reference_accuracy(big), sim_.reference_accuracy(small));
}

TEST_F(SimulatorTest, TrainingCostScalesWithEpochsAndResolution) {
  const Architecture a = MnasSpace::to_blocks(MnasSpace::instance().sample(rng_));
  const double c10 = sim_.training_cost_hours(a, proxy_scheme(10, 224));
  const double c20 = sim_.training_cost_hours(a, proxy_scheme(20, 224));
  EXPECT_NEAR(c20 / c10, 2.0, 1e-9);
  const double c160 = sim_.training_cost_hours(a, proxy_scheme(10, 160));
  EXPECT_NEAR(c10 / c160, (224.0 * 224.0) / (160.0 * 160.0), 1e-9);
}

TEST_F(SimulatorTest, ProgressiveResizingSavesTime) {
  const Architecture a = MnasSpace::to_blocks(MnasSpace::instance().sample(rng_));
  TrainingScheme ramp = proxy_scheme(30, 224);
  ramp.res_start = 128;
  ramp.resize_finish_epoch = 20;
  EXPECT_LT(sim_.training_cost_hours(a, ramp),
            sim_.training_cost_hours(a, proxy_scheme(30, 224)));
}

TEST_F(SimulatorTest, ReferenceCostRealistic) {
  // Paper-scale: a mid-size model costs tens of GPU-hours under r and the
  // ~5.6-7x cheaper proxy lands near 3 GPU-hours.
  const double ref =
      sim_.training_cost_hours(effnet_b0_like().arch, reference_scheme());
  EXPECT_GT(ref, 8.0);
  EXPECT_LT(ref, 60.0);
}

TEST_F(SimulatorTest, BiggerModelsCostMore) {
  Architecture small, big;
  for (auto& b : small.blocks) b = BlockConfig{1, 3, 1, false};
  for (auto& b : big.blocks) b = BlockConfig{6, 5, 3, true};
  EXPECT_GT(sim_.training_cost_hours(big, reference_scheme()),
            2.0 * sim_.training_cost_hours(small, reference_scheme()));
}

TEST_F(SimulatorTest, ProxyPreservesRankingsApproximately) {
  // The central premise (Eq. 1): a sane proxy keeps tau high.
  std::vector<double> ref, prox;
  for (int i = 0; i < 150; ++i) {
    const Architecture a = MnasSpace::to_blocks(MnasSpace::instance().sample(rng_));
    ref.push_back(sim_.train(a, reference_scheme(), 0).top1);
    prox.push_back(sim_.train(a, proxy_scheme(30, 224), 0).top1);
  }
  EXPECT_GT(kendall_tau(ref, prox), 0.85);
}

TEST_F(SimulatorTest, AggressiveProxyDegradesRankings) {
  std::vector<double> ref, gentle, harsh;
  for (int i = 0; i < 150; ++i) {
    const Architecture a = MnasSpace::to_blocks(MnasSpace::instance().sample(rng_));
    ref.push_back(sim_.expected_accuracy(a, reference_scheme()));
    gentle.push_back(sim_.train(a, proxy_scheme(50, 224), 0).top1);
    harsh.push_back(sim_.train(a, proxy_scheme(10, 160), 0).top1);
  }
  EXPECT_GT(kendall_tau(ref, gentle), kendall_tau(ref, harsh));
}

TEST_F(SimulatorTest, InvalidInputsThrow) {
  Architecture bad;
  bad.blocks[0].kernel = 9;
  EXPECT_THROW(sim_.latent_quality(bad), Error);
  TrainingScheme s = proxy_scheme(10, 224);
  s.resize_finish_epoch = 20;  // > total
  const Architecture ok = MnasSpace::to_blocks(MnasSpace::instance().sample(rng_));
  EXPECT_THROW(sim_.train(ok, s, 0), Error);
}

TEST_F(SimulatorTest, Int8DropSmallAndStructured) {
  Architecture no_se, all_se;
  for (auto& b : no_se.blocks) b = BlockConfig{6, 3, 3, false};
  for (auto& b : all_se.blocks) b = BlockConfig{6, 3, 3, true};
  const double d_no_se = sim_.int8_accuracy_drop(no_se);
  const double d_all_se = sim_.int8_accuracy_drop(all_se);
  EXPECT_GT(d_all_se, d_no_se);  // SE gates quantize poorly
  for (int i = 0; i < 30; ++i) {
    const double d = sim_.int8_accuracy_drop(MnasSpace::to_blocks(MnasSpace::instance().sample(rng_)));
    EXPECT_GT(d, 0.0);
    EXPECT_LT(d, 0.02);  // PTQ on convnets: well under 2 points
  }
}

TEST_F(SimulatorTest, Int8DropLargerForSmallModels) {
  Architecture small, big;
  for (auto& b : small.blocks) b = BlockConfig{1, 3, 1, false};
  for (auto& b : big.blocks) b = BlockConfig{6, 5, 3, false};
  EXPECT_GT(sim_.int8_accuracy_drop(small), sim_.int8_accuracy_drop(big));
}

// Property: accuracy monotone in epochs for many random architectures.
class EpochMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(EpochMonotonicity, AccuracyNonDecreasingInEpochs) {
  TrainingSimulator sim(42);
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  const Architecture a = MnasSpace::to_blocks(MnasSpace::instance().sample(rng));
  double prev = 0.0;
  for (int epochs : {10, 15, 20, 30, 50, 100, 200}) {
    const double acc = sim.expected_accuracy(a, proxy_scheme(epochs, 224));
    EXPECT_GE(acc + 1e-12, prev) << "epochs=" << epochs;
    prev = acc;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomArchs, EpochMonotonicity,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace anb
