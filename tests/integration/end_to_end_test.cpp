#include <gtest/gtest.h>

#include <cstdio>

#include "anb/anb/harness.hpp"
#include "anb/anb/pipeline.hpp"
#include "anb/util/metrics.hpp"

namespace anb {
namespace {

/// Full pipeline at reduced scale: proxy scheme -> collection -> surrogate
/// fits -> zero-cost search -> true re-evaluation. This is the paper's
/// Fig. 2 plus §4 in one run.
TEST(EndToEndTest, FullBenchmarkConstructionAndUse) {
  PipelineOptions options;
  options.n_archs = 800;
  options.tune = false;
  const PipelineResult result = construct_benchmark(options);

  // 1 accuracy + 8 perf datasets fitted and evaluated.
  EXPECT_EQ(result.test_metrics.size(), 9u);
  const FitMetrics& acc = result.test_metrics.at("ANB-Acc");
  EXPECT_GT(acc.kendall_tau, 0.7);
  EXPECT_GT(acc.r2, 0.7);
  for (const auto& [name, metrics] : result.test_metrics) {
    EXPECT_GT(metrics.kendall_tau, 0.6) << name;
  }

  // Zero-cost queries agree with fresh predictions after save/load.
  const std::string path = ::testing::TempDir() + "/anb_e2e_bench.json";
  result.bench.save(path);
  const AccelNASBench loaded = AccelNASBench::load(path);
  std::remove(path.c_str());
  Rng rng(5);
  const Arch probe = MnasSpace::instance().sample(rng);
  EXPECT_DOUBLE_EQ(loaded.query_accuracy(probe),
                   result.bench.query_accuracy(probe));

  // The benchmark's accuracy surrogate ranks like the true (simulated)
  // proxified training on fresh architectures.
  TrainingSimulator sim(options.world_seed);
  std::vector<double> predicted, actual;
  for (int i = 0; i < 120; ++i) {
    const Arch a = MnasSpace::instance().sample(rng);
    predicted.push_back(result.bench.query_accuracy(a));
    actual.push_back(
        sim.train(MnasSpace::to_blocks(a), result.p_star, 1).top1);
  }
  EXPECT_GT(kendall_tau(predicted, actual), 0.7);

  // Bi-objective zero-cost search produces models that, when "actually"
  // trained and measured, sit at competitive accuracy/throughput.
  ParetoSearchConfig search;
  search.key = {DeviceKind::kZcu102, PerfMetric::kThroughput};
  search.n_targets = 2;
  search.n_evals_per_target = 60;
  search.n_picks = 2;
  const ParetoOutcome outcome = pareto_search(result.bench, search);
  const auto rows = true_evaluation(outcome, sim, MetricKey{DeviceKind::kZcu102, PerfMetric::kThroughput}, "zcu102");
  double best_ours_acc = 0.0;
  double best_baseline_acc = 0.0;
  for (const auto& row : rows) {
    (row.is_ours ? best_ours_acc : best_baseline_acc) =
        std::max(row.is_ours ? best_ours_acc : best_baseline_acc,
                 row.accuracy);
  }
  // Searched models should reach at least near-baseline accuracy.
  EXPECT_GT(best_ours_acc, best_baseline_acc - 0.05);
}

TEST(EndToEndTest, ProxySearchFeedsPipeline) {
  // Run the actual (small-grid) proxy search inside the pipeline.
  PipelineOptions options;
  options.n_archs = 200;
  options.run_proxy_search = true;
  options.proxy.n_models = 6;
  options.proxy.t_spec_hours = 3.0;
  options.proxy.domains.batch_size = {512};
  options.proxy.domains.total_epochs = {15, 30};
  options.proxy.domains.resize_start_epoch = {0};
  options.proxy.domains.resize_finish_epoch = {10};
  options.proxy.domains.res_start = {160, 192};
  options.proxy.domains.res_finish = {224};
  options.collect_perf = false;
  const PipelineResult result = construct_benchmark(options);

  EXPECT_FALSE(result.proxy.trials.empty());
  EXPECT_EQ(result.p_star, result.proxy.best);
  EXPECT_LE(result.proxy.best_cost_hours, options.proxy.t_spec_hours);
  EXPECT_GT(result.proxy.speedup, 1.0);
  EXPECT_TRUE(result.bench.has_accuracy());
  EXPECT_FALSE(result.bench.has_perf(MetricKey{DeviceKind::kA100, PerfMetric::kThroughput}));
}

}  // namespace
}  // namespace anb
