// Cross-space mini-pipeline (tier-1): the space-generic stack — sampling,
// NAS optimizers, benchmark construction, artifact round-trip — run over
// BOTH registered spaces in one suite.
//
//  1. Golden trajectories per space: RS and RE with pinned seeds against a
//     space-generic objective built from exact binary fractions, compared
//     to committed first/last/checksum constants. Any drift in either
//     space's RNG discipline, index codec, or optimizer logic flips the
//     checksum (same playbook as tests/nas/golden_trajectory_test.cpp;
//     regenerate by pasting the "actual" strings from the failure output).
//  2. A reduced-scale construct_benchmark() per space: the artifact is
//     tagged with its space, survives a binary round-trip, and zero-cost
//     search over it stays inside the space and is run-to-run
//     bit-identical.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>

#include "anb/anb/pipeline.hpp"
#include "anb/fbnet/fbnet_space.hpp"
#include "anb/nas/evolution.hpp"
#include "anb/nas/random_search.hpp"

namespace anb {
namespace {

/// Exact-binary-fraction objective over the raw genotype bytes: every
/// space encodes decisions as small non-negative integers, so 0.25*d and
/// the 0.5 bonus are exact doubles in every space — bit-stable on any
/// platform, no training simulator involved.
double golden_objective(const Arch& arch) {
  double score = 0.0;
  for (int i = 0; i < arch.n; ++i) {
    const double d = arch.d[static_cast<std::size_t>(i)];
    score += 0.25 * d + (d == 0.0 ? 0.5 : 0.0);
  }
  return score;
}

class Checksum {
 public:
  explicit Checksum(const SearchSpace& sp) : sp_(sp) {}
  void add_arch(const Arch& arch) { mix(sp_.to_index(arch)); }
  void add_value(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  std::uint64_t value() const { return h_; }

 private:
  void mix(std::uint64_t x) { h_ = hash_combine(h_, x); }
  const SearchSpace& sp_;
  std::uint64_t h_ = 0x9E3779B97F4A7C15ULL;
};

std::string summarize(const SearchSpace& sp, const SearchTrajectory& t) {
  Checksum sum(sp);
  for (std::size_t i = 0; i < t.size(); ++i) {
    sum.add_arch(t.archs[i]);
    sum.add_value(t.values[i]);
    sum.add_value(t.incumbent[i]);
  }
  std::ostringstream os;
  os << "n=" << t.size() << " first=" << sp.to_index(t.archs.front()) << ":"
     << std::hexfloat << t.values.front() << std::defaultfloat
     << " last=" << sp.to_index(t.archs.back()) << ":" << std::hexfloat
     << t.values.back() << std::defaultfloat << " sum=0x" << std::hex
     << sum.value();
  return os.str();
}

std::string run_rs(const SearchSpace& sp) {
  RandomSearchNas rs(sp);
  Rng rng(4040);
  return summarize(sp, rs.run(golden_objective, 40, rng));
}

std::string run_re(const SearchSpace& sp) {
  RegularizedEvolutionParams p;
  p.population_size = 10;
  p.sample_size = 3;
  RegularizedEvolution re(p, sp);
  Rng rng(4041);
  return summarize(sp, re.run(golden_objective, 50, rng));
}

TEST(CrossSpaceGolden, MnasNetTrajectories) {
  const SearchSpace& sp = MnasSpace::instance();
  EXPECT_EQ(run_rs(sp), "n=40 first=71681540362:0x1.6p+3 last=41652534927:0x1.6p+3 sum=0x4c200ea8a26e1bea");
  EXPECT_EQ(run_re(sp), "n=50 first=16139128633:0x1.6p+3 last=56883205740:0x1.9p+3 sum=0xb2d32c8f21124df4");
}

TEST(CrossSpaceGolden, FbnetTrajectories) {
  const SearchSpace& sp = FbnetSpace::instance();
  EXPECT_EQ(run_rs(sp), "n=40 first=39320570880638577:0x1.2p+4 last=1278049113573621831:0x1.34p+4 sum=0xbe93d01679f2f4bd");
  EXPECT_EQ(run_re(sp), "n=50 first=136331817324263224:0x1.24p+4 last=843725492523596058:0x1.74p+4 sum=0x61386f68940f8e2a");
}

/// Reduced-scale end-to-end construction per space: the pipeline, cache,
/// artifact, and searcher all agree on what space they are in.
void mini_pipeline_roundtrip(SpaceId space) {
  register_builtin_spaces();
  const SearchSpace& sp = anb::space(space);

  PipelineOptions options;
  options.space = space;
  options.n_archs = 250;
  options.collect_perf = false;
  const PipelineResult result = construct_benchmark(options);
  EXPECT_EQ(result.bench.space(), space);
  EXPECT_TRUE(result.bench.has_accuracy());

  // Binary round-trip preserves the space tag and the predictions.
  const std::string path = ::testing::TempDir() + "/anb_cross_space_" +
                           std::string(sp.name()) + ".anbb";
  result.bench.save_binary(path);
  const AccelNASBench loaded = AccelNASBench::load_binary(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.space(), space);
  Rng rng(17);
  for (int i = 0; i < 16; ++i) {
    const Arch probe = sp.sample(rng);
    EXPECT_DOUBLE_EQ(loaded.query_accuracy(probe),
                     result.bench.query_accuracy(probe));
  }

  // Zero-cost RE over the artifact: stays inside the space and is
  // bit-identical across two identical runs (the determinism half of the
  // acceptance contract, here without any server in the path).
  const auto search_once = [&] {
    RegularizedEvolution re({}, sp);
    Rng re_rng(99);
    return re.run(
        [&](const Arch& arch) { return loaded.query_accuracy(arch); }, 60,
        re_rng);
  };
  const SearchTrajectory a = search_once();
  const SearchTrajectory b = search_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(sp.is_valid(a.archs[i]));
    EXPECT_EQ(sp.to_index(a.archs[i]), sp.to_index(b.archs[i]));
    EXPECT_EQ(a.values[i], b.values[i]);  // exact doubles
  }
}

TEST(CrossSpacePipeline, MnasNetMiniPipelineRoundTrips) {
  mini_pipeline_roundtrip(SpaceId::kMnasNet);
}

TEST(CrossSpacePipeline, FbnetMiniPipelineRoundTrips) {
  mini_pipeline_roundtrip(SpaceId::kFbnet);
}

}  // namespace
}  // namespace anb
