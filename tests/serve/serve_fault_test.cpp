// Graceful degradation under injected client misbehavior: stalled reads,
// slow writes, and server-side connection drops. Two contracts:
//
//  1. Values stay bit-exact — a fault can delay or sever a conversation,
//     never corrupt a number.
//  2. The ServeReport is exact and thread-invariant: every fault decision
//     is keyed on (client_id, incarnation, request_id), so the same armed
//     policy produces the same per-client counts at any scheduler thread
//     count or interleaving (mirroring the CollectionReport invariance
//     contract of the robust-collection layer).
//
// Plus isolation: a stalled client occupies only its own connection
// threads — other clients' buckets keep flushing (asserted by completion,
// not wall-clock, so the test cannot flake on timing).

#include "anb/serve/server.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "anb/serve/client.hpp"
#include "anb/util/fault.hpp"
#include "serve_test_util.hpp"

namespace anb {
namespace {

using namespace anb::serve;
using namespace anb::serve_test;

class ServeFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bench_ = make_bench(51);
    bench_.set_cache_enabled(false);
    pool_ = distinct_indices(12, 61);
    for (std::uint64_t index : pool_) {
      expected_.push_back(
          bench_.query_accuracy(MnasSpace::instance().from_index(index)));
    }
  }

  void TearDown() override { fault::disarm_all(); }

  /// Replay each client's fixed request sequence (every pool arch once,
  /// accuracy), reconnecting with a bumped incarnation on drop faults.
  /// Returns the report after a graceful stop.
  ServeReport run_clients(unsigned worker_threads, std::size_t clients) {
    ServeOptions options;
    options.scheduler.worker_threads = worker_threads;
    Server server(bench_, options);
    server.start();

    std::vector<std::thread> threads;
    for (std::uint64_t c = 0; c < clients; ++c) {
      threads.emplace_back([this, &server, c] {
        // A drop fault can sever the connection on ANY request — including
        // the kHello itself (it keys under its announced identity) — so
        // connect + hello sits inside the same retry loop as the queries.
        // Each reconnect bumps the incarnation, giving retried requests
        // fresh fault decisions; the per-client trajectory is a pure
        // function of the armed policy, hence thread-invariant.
        std::uint32_t incarnation = 0;
        std::unique_ptr<Client> client;
        std::size_t next_op = 0;
        while (next_op < pool_.size()) {
          try {
            if (!client) {
              client = std::make_unique<Client>(server.socket_path());
              client->hello(c, incarnation);
            }
            const double got = client->query_accuracy(pool_[next_op]);
            EXPECT_EQ(got, expected_[next_op])
                << "client " << c << " op " << next_op;
            ++next_op;
          } catch (const Disconnected&) {
            client.reset();
            ++incarnation;
            ASSERT_LT(incarnation, 64u) << "drop fault never cleared";
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    server.stop();
    return server.report();
  }

  AccelNASBench bench_;
  std::vector<std::uint64_t> pool_;
  std::vector<double> expected_;
};

TEST_F(ServeFaultTest, StalledReadsKeepValuesExactAndReportInvariant) {
  fault::ScopedFault stall(kServeReadStallSite,
                           fault::Policy::bernoulli(0.4, 7));
  const ServeReport one = run_clients(/*worker_threads=*/1, /*clients=*/4);
  const ServeReport many = run_clients(/*worker_threads=*/0, /*clients=*/4);

  // Per-client rows are exact and identical across thread counts; batch
  // *cut points* may differ (stalls shift arrival timing), but total rows
  // cannot.
  EXPECT_EQ(one.clients, many.clients);
  EXPECT_EQ(one.rows, many.rows);
  EXPECT_EQ(one.bucket_rows, many.bucket_rows);

  std::uint64_t stalls = 0;
  for (const auto& [id, row] : one.clients) {
    EXPECT_EQ(row.received, row.ok + row.error + row.retry_later + row.dropped);
    EXPECT_EQ(row.dropped, 0u);
    EXPECT_EQ(row.error, 0u);
    stalls += row.stall_faults;
  }
  EXPECT_GT(stalls, 0u) << "policy armed but no stall ever fired";
}

TEST_F(ServeFaultTest, DropFaultsForceReconnectAndStayExact) {
  fault::ScopedFault drop(kServeDropSite, fault::Policy::bernoulli(0.2, 11));
  const ServeReport one = run_clients(/*worker_threads=*/1, /*clients=*/3);
  const ServeReport many = run_clients(/*worker_threads=*/0, /*clients=*/3);

  EXPECT_EQ(one.clients, many.clients);
  EXPECT_EQ(one.connections_accepted, many.connections_accepted);

  std::uint64_t dropped = 0;
  for (const auto& [id, row] : one.clients) {
    EXPECT_EQ(row.received, row.ok + row.error + row.retry_later + row.dropped);
    dropped += row.dropped;
    // Every op eventually succeeded: ok covers hellos plus one success
    // per op; drops added extra received.
    EXPECT_GE(row.ok, pool_.size() + 1);
  }
  EXPECT_GT(dropped, 0u) << "policy armed but no drop ever fired";
  // Each drop severed a connection, so the reconnects are visible.
  EXPECT_GT(one.connections_accepted, 3u);
}

TEST_F(ServeFaultTest, SlowWritesKeepValuesExactAndReportInvariant) {
  fault::ScopedFault slow(kServeWriteSlowSite,
                          fault::Policy::bernoulli(0.3, 13));
  const ServeReport one = run_clients(/*worker_threads=*/1, /*clients=*/3);
  const ServeReport many = run_clients(/*worker_threads=*/0, /*clients=*/3);

  EXPECT_EQ(one.clients, many.clients);
  std::uint64_t slows = 0;
  for (const auto& [id, row] : one.clients) slows += row.slow_faults;
  EXPECT_GT(slows, 0u) << "policy armed but no slow write ever fired";
}

TEST_F(ServeFaultTest, StalledClientDoesNotBlockOtherBuckets) {
  // Client 0 stalls on every request (kAlways fires for all connections,
  // but only client 0's thread is sending here while the fast clients
  // hammer a different bucket). Arm, then have fast clients run a large
  // perf workload; completion of the fast clients while the stalled
  // client is still mid-sequence is the isolation proof — if a stalled
  // reader held the scheduler or another bucket's flush, the fast clients
  // could not finish.
  Server server(bench_, {});
  server.start();

  // The stalled client queries accuracy (its own bucket) with every
  // request stalling ~2ms; the fast clients query A100 throughput.
  fault::ScopedFault stall(kServeReadStallSite, fault::Policy::always());
  std::thread stalled([this, &server] {
    Client client(server.socket_path());
    client.hello(100, 0);
    for (std::uint64_t index : pool_) {
      EXPECT_EQ(client.query_accuracy(index),
                bench_.query_accuracy(MnasSpace::instance().from_index(index)));
    }
  });

  std::vector<std::thread> fast;
  for (std::uint64_t c = 0; c < 3; ++c) {
    fast.emplace_back([this, &server, c] {
      Client client(server.socket_path());
      client.hello(c, 0);
      for (int round = 0; round < 4; ++round) {
        const auto values = client.query_perf_batch(kA100Thr, pool_);
        for (std::size_t i = 0; i < pool_.size(); ++i) {
          EXPECT_EQ(values[i],
                    bench_.query_perf(MnasSpace::instance().from_index(pool_[i]),
                                      kA100Thr));
        }
      }
    });
  }
  for (auto& t : fast) t.join();
  stalled.join();
  server.stop();

  const ServeReport report = server.report();
  EXPECT_EQ(report.clients.at(100).ok, pool_.size() + 1);
  EXPECT_GT(report.clients.at(100).stall_faults, 0u);
}

}  // namespace
}  // namespace anb
