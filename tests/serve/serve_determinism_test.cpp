// The headline contract of the serving layer: the same request multiset
// produces bit-identical response values regardless of client count,
// arrival interleaving, micro-batch cut points, scheduler thread count,
// or whether coalescing is enabled at all. Each scenario replays a seeded
// request multiset from N concurrent in-process clients against every
// server configuration and EXPECT_EQs the doubles (exact bit comparison)
// against a serial cache-less oracle computed without any server.

#include "anb/serve/server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "anb/serve/client.hpp"
#include "anb/util/rng.hpp"
#include "serve_test_util.hpp"

namespace anb {
namespace {

using namespace anb::serve;
using namespace anb::serve_test;

/// One client request: a target bucket and one or more architectures
/// (size 1 = scalar frame, larger = batch frame).
struct Op {
  bool accuracy = true;
  MetricKey key;
  std::vector<std::uint64_t> archs;
};

/// Seeded request script for one client: a shuffled mix of scalar and
/// batch queries over a shared arch pool, different per client.
std::vector<Op> make_script(std::uint64_t seed,
                            const std::vector<std::uint64_t>& pool) {
  Rng rng(seed);
  std::vector<Op> ops;
  for (int i = 0; i < 30; ++i) {
    Op op;
    const double which = rng.uniform();
    if (which < 0.5) {
      op.accuracy = true;
    } else {
      op.accuracy = false;
      op.key = which < 0.75 ? kA100Thr : kZcuLat;
    }
    const std::size_t rows =
        rng.uniform() < 0.2 ? 1 + rng.uniform_index(5) : 1;
    for (std::size_t r = 0; r < rows; ++r) {
      op.archs.push_back(pool[rng.uniform_index(pool.size())]);
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

/// Serial oracle: scalar queries on a cache-less bench, no server at all.
std::vector<std::vector<double>> oracle(const AccelNASBench& bench,
                                        const std::vector<Op>& script,
                                        const SearchSpace& sp) {
  std::vector<std::vector<double>> out;
  for (const Op& op : script) {
    std::vector<double> values;
    for (std::uint64_t index : op.archs) {
      const Arch arch = sp.from_index(index);
      values.push_back(op.accuracy ? bench.query_accuracy(arch)
                                   : bench.query_perf(arch, op.key));
    }
    out.push_back(std::move(values));
  }
  return out;
}

/// Replay `script` through a client connection; returns per-op values.
std::vector<std::vector<double>> replay(const std::string& socket_path,
                                        std::uint64_t client_id,
                                        const std::vector<Op>& script,
                                        SpaceId space) {
  Client client(socket_path);
  client.hello(client_id, 0);
  std::vector<std::vector<double>> out;
  for (const Op& op : script) {
    if (op.archs.size() == 1) {
      const double v =
          op.accuracy ? client.query_accuracy(op.archs[0], space)
                      : client.query_perf(op.key, op.archs[0], space);
      out.push_back({v});
    } else {
      out.push_back(op.accuracy
                        ? client.query_accuracy_batch(op.archs, space)
                        : client.query_perf_batch(op.key, op.archs, space));
    }
  }
  return out;
}

class ServeDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { init(MnasSpace::instance()); }

  /// Space-generic fixture body: the FBNet suite below re-enters it with
  /// the other registered space.
  void init(const SearchSpace& sp) {
    register_builtin_spaces();
    space_ = sp.id();
    bench_ = make_bench(11, sp);
    bench_.set_cache_enabled(false);  // determinism must not lean on it
    pool_ = distinct_indices(16, 21, sp);
    for (std::uint64_t c = 0; c < kClients; ++c) {
      scripts_.push_back(make_script(100 + c, pool_));
      expected_.push_back(oracle(bench_, scripts_.back(), sp));
    }
  }

  /// Run every client's script concurrently against one configuration and
  /// assert bit-identical results; returns the server report.
  ServeReport run_config(bool coalescing, unsigned worker_threads,
                         std::uint32_t batch_max) {
    ServeOptions options;
    options.coalescing = coalescing;
    options.scheduler.worker_threads = worker_threads;
    options.scheduler.batch_max = batch_max;
    Server server(bench_, options);
    server.start();

    std::vector<std::vector<std::vector<double>>> got(kClients);
    std::vector<std::thread> threads;
    for (std::uint64_t c = 0; c < kClients; ++c) {
      threads.emplace_back([this, &server, &got, c] {
        got[c] = replay(server.socket_path(), c, scripts_[c], space_);
      });
    }
    for (auto& t : threads) t.join();

    const std::string label =
        "coalescing=" + std::to_string(coalescing) +
        " workers=" + std::to_string(worker_threads) +
        " batch_max=" + std::to_string(batch_max);
    for (std::uint64_t c = 0; c < kClients; ++c) {
      EXPECT_EQ(got[c].size(), expected_[c].size()) << label;
      const std::size_t n = std::min(got[c].size(), expected_[c].size());
      for (std::size_t i = 0; i < n; ++i) {
        // EXPECT_EQ on double is exact: same bits or failure.
        EXPECT_EQ(got[c][i], expected_[c][i])
            << label << " client " << c << " op " << i;
      }
    }
    server.stop();
    return server.report();
  }

  static constexpr std::uint64_t kClients = 6;
  SpaceId space_ = SpaceId::kMnasNet;
  AccelNASBench bench_;
  std::vector<std::uint64_t> pool_;
  std::vector<std::vector<Op>> scripts_;
  std::vector<std::vector<std::vector<double>>> expected_;
};

TEST_F(ServeDeterminismTest, BitIdenticalAcrossThreadCountsAndCoalescing) {
  // Coalescing on, at 1 / 2 / hardware scheduler threads, and with a tiny
  // batch_max (many cut points) vs the default (few): every combination
  // must agree with the serial oracle bit-for-bit, hence with each other.
  run_config(/*coalescing=*/true, /*worker_threads=*/1, /*batch_max=*/64);
  run_config(/*coalescing=*/true, /*worker_threads=*/2, /*batch_max=*/64);
  run_config(/*coalescing=*/true, /*worker_threads=*/0, /*batch_max=*/64);
  run_config(/*coalescing=*/true, /*worker_threads=*/2, /*batch_max=*/3);
  // Coalescing off: synchronous scalar path, same values.
  run_config(/*coalescing=*/false, /*worker_threads=*/1, /*batch_max=*/64);
}

TEST_F(ServeDeterminismTest, ReportIsExactAndConserved) {
  const ServeReport report = run_config(true, 2, 8);

  // Every client announced itself, so no anonymous row.
  EXPECT_EQ(report.clients.count(kAnonymousClient), 0u);
  ASSERT_EQ(report.clients.size(), kClients);

  std::uint64_t want_rows = 0;
  for (std::uint64_t c = 0; c < kClients; ++c) {
    const ClientReport& row = report.clients.at(c);
    // hello + one request per op, all answered ok.
    EXPECT_EQ(row.received, scripts_[c].size() + 1) << "client " << c;
    EXPECT_EQ(row.ok, row.received);
    EXPECT_EQ(row.error, 0u);
    EXPECT_EQ(row.retry_later, 0u);
    EXPECT_EQ(row.dropped, 0u);
    EXPECT_EQ(row.received, row.ok + row.error + row.retry_later + row.dropped);
    for (const Op& op : scripts_[c]) want_rows += op.archs.size();
  }
  EXPECT_EQ(report.connections_accepted, kClients);
  // Every queued row was flushed exactly once, whatever the cut points.
  EXPECT_EQ(report.rows, want_rows);
  EXPECT_GE(report.batches, 1u);
  std::uint64_t bucket_total = 0;
  for (const auto& [name, rows] : report.bucket_rows) bucket_total += rows;
  EXPECT_EQ(bucket_total, want_rows);
}

/// The acceptance contract holds per space: an FBNet-backed server must
/// be just as bit-identical across thread counts and coalescing settings
/// as the MnasNet one (same scripts, FBNet index pool and genotypes).
class FbnetServeDeterminismTest : public ServeDeterminismTest {
 protected:
  void SetUp() override { init(FbnetSpace::instance()); }
};

TEST_F(FbnetServeDeterminismTest, BitIdenticalAcrossThreadCountsAndCoalescing) {
  run_config(/*coalescing=*/true, /*worker_threads=*/1, /*batch_max=*/64);
  run_config(/*coalescing=*/true, /*worker_threads=*/2, /*batch_max=*/64);
  run_config(/*coalescing=*/true, /*worker_threads=*/0, /*batch_max=*/64);
  run_config(/*coalescing=*/true, /*worker_threads=*/2, /*batch_max=*/3);
  run_config(/*coalescing=*/false, /*worker_threads=*/1, /*batch_max=*/64);
}

TEST_F(ServeDeterminismTest, BackpressureIsDeterministicUnderPause) {
  // With a tiny queue and flushing paused, admissions are exact: the
  // first `queue_capacity` rows are admitted, every later submit gets
  // kRetryLater, and after resume the admitted rows all complete with
  // oracle values.
  ServeOptions options;
  options.scheduler.queue_capacity = 4;
  options.scheduler.worker_threads = 2;
  Server server(bench_, options);
  server.start();
  server.scheduler_for_test().pause();

  Client client(server.socket_path());
  client.hello(77, 0);
  const AccelNASBench& oracle_bench = bench_;

  // While paused, pipeline 10 scalar requests through the raw frame API
  // (the blocking client would deadlock waiting for held replies). The
  // kRetryLater replies arrive immediately, the admitted values only
  // after resume, so replies are matched to requests by echoed id.
  std::map<std::uint64_t, std::uint64_t> arch_by_id;
  for (std::size_t i = 0; i < 10; ++i) {
    const std::uint64_t id = client.next_request_id();
    arch_by_id[id] = pool_[i];
    const auto frame = encode_query_accuracy(id, pool_[i]);
    ASSERT_TRUE(client.socket().send_all(frame));
  }
  server.scheduler_for_test().resume();

  std::size_t ok = 0;
  std::size_t retry = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    const Reply reply = client.recv_reply();
    ASSERT_TRUE(arch_by_id.count(reply.request_id));
    if (reply.type == MsgType::kRetryLater) {
      ++retry;
    } else {
      ASSERT_EQ(reply.type, MsgType::kValue);
      EXPECT_EQ(reply.value,
                oracle_bench.query_accuracy(
                    MnasSpace::instance().from_index(arch_by_id.at(reply.request_id))));
      ++ok;
    }
  }
  EXPECT_EQ(ok, 4u);
  EXPECT_EQ(retry, 6u);

  server.stop();
  const ServeReport report = server.report();
  const ClientReport& row = report.clients.at(77);
  EXPECT_EQ(row.retry_later, 6u);
  EXPECT_EQ(row.ok, 5u);  // hello + 4 admitted queries
}

}  // namespace
}  // namespace anb
