// Adversarial protocol coverage: the server must survive any byte stream
// — truncations at every frame boundary, oversized or undersized length
// prefixes, wrong magic/version, random bit-flips, garbage payloads, and
// mid-frame disconnects — answering with a typed kError where the stream
// still permits a reply, and never crashing. After every hostile
// connection the server is proven alive with a fresh well-formed query.
// Runs under ASan/UBSan in CI (the sanitizer legs run all tier-1 suites),
// so any out-of-bounds parse dies loudly here.
//
// Well over 150 distinct malformed cases are exercised; the test counts
// them and asserts the floor so the suite cannot silently shrink.

#include "anb/serve/protocol.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "anb/serve/client.hpp"
#include "anb/serve/server.hpp"
#include "anb/util/rng.hpp"
#include "serve_test_util.hpp"

namespace anb {
namespace {

using namespace anb::serve;
using namespace anb::serve_test;

class ProtocolFuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bench_ = new AccelNASBench(make_bench(31));
    arch_ = distinct_indices(1, 41)[0];
    ServeOptions options;
    options.scheduler.worker_threads = 2;
    server_ = new Server(*bench_, options);
    server_->start();
  }

  static void TearDownTestSuite() {
    server_->stop();
    delete server_;
    server_ = nullptr;
    delete bench_;
    bench_ = nullptr;
  }

  /// Send raw bytes on a fresh connection, read replies until the server
  /// closes the stream, and return the first reply (if any). The server
  /// must close hostile connections on its own — a hang here fails the
  /// test by timeout.
  std::optional<Reply> poke(std::span<const char> bytes) {
    ++cases_;
    Client client(server_->socket_path());
    if (!client.socket().send_all(bytes)) return std::nullopt;
    client.socket().shutdown_write();
    std::optional<Reply> first;
    try {
      for (;;) {
        Reply reply = client.recv_reply();
        if (!first) first = std::move(reply);
      }
    } catch (const Disconnected&) {
      // Expected: the server replied (or not) and closed.
    }
    return first;
  }

  /// The server must still answer a well-formed query bit-exactly.
  void expect_alive() {
    Client client(server_->socket_path());
    EXPECT_EQ(client.query_accuracy(arch_),
              bench_->query_accuracy(MnasSpace::instance().from_index(arch_)));
  }

  static int cases_;
  static AccelNASBench* bench_;
  static Server* server_;
  static std::uint64_t arch_;
};

int ProtocolFuzzTest::cases_ = 0;
AccelNASBench* ProtocolFuzzTest::bench_ = nullptr;
Server* ProtocolFuzzTest::server_ = nullptr;
std::uint64_t ProtocolFuzzTest::arch_ = 0;

TEST_F(ProtocolFuzzTest, TruncationAtEveryBoundary) {
  // Every strict prefix of a valid scalar-perf frame, then disconnect:
  // an incomplete frame must never elicit a crash or a bogus reply —
  // the server just sees EOF mid-frame and closes cleanly.
  const std::vector<char> frame = encode_query_perf(7, kA100Thr, arch_);
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    const auto reply =
        poke(std::span<const char>(frame.data(), cut));
    EXPECT_FALSE(reply.has_value()) << "cut at " << cut;
  }
  expect_alive();
}

TEST_F(ProtocolFuzzTest, BadLengthPrefixes) {
  // Lengths below the header size or above kMaxFrameBytes are framing
  // errors: typed kBadLength reply, then close — checked before any
  // allocation, so a hostile 4 GiB prefix cannot balloon memory.
  std::vector<std::uint32_t> lengths;
  for (std::uint32_t len = 0; len < kHeaderBytes; ++len) lengths.push_back(len);
  lengths.push_back(kMaxFrameBytes + 1);
  lengths.push_back(0x7FFFFFFFu);
  lengths.push_back(0xFFFFFFFFu);
  for (const std::uint32_t len : lengths) {
    std::vector<char> bytes(4 + kHeaderBytes, 0);
    std::memcpy(bytes.data(), &len, 4);
    const auto reply = poke(bytes);
    ASSERT_TRUE(reply.has_value()) << "length " << len;
    EXPECT_EQ(reply->type, MsgType::kError);
    EXPECT_EQ(reply->code, ErrorCode::kBadLength);
  }
  expect_alive();
}

TEST_F(ProtocolFuzzTest, BadMagicAndVersion) {
  const std::vector<char> good = encode_ping(9);
  for (const std::uint32_t magic :
       {0u, 0x51424E42u, 0xFFFFFFFFu, 0x414E4251u}) {
    std::vector<char> bytes = good;
    std::memcpy(bytes.data() + 4, &magic, 4);
    const auto reply = poke(bytes);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, MsgType::kError);
    EXPECT_EQ(reply->code, ErrorCode::kBadMagic);
  }
  for (const std::uint16_t version : {std::uint16_t{0}, std::uint16_t{1},
                                      std::uint16_t{3}, std::uint16_t{0xFFFF}}) {
    std::vector<char> bytes = good;
    std::memcpy(bytes.data() + 8, &version, 2);
    const auto reply = poke(bytes);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, MsgType::kError);
    EXPECT_EQ(reply->code, ErrorCode::kBadVersion);
  }
  expect_alive();
}

TEST_F(ProtocolFuzzTest, V1FrameVersionSkew) {
  // A faithful protocol-v1 query frame (version 1, no space field, bare
  // u64 index payload): the version gate must reject it as kBadVersion
  // before the payload is ever decoded — a v1 payload parsed with v2
  // offsets would misread the index.
  std::vector<char> frame(4 + kHeaderBytes + 8, 0);
  const std::uint32_t length = kHeaderBytes + 8;
  const std::uint32_t magic = 0x51424E41u;  // "ANBQ"
  const std::uint16_t version = 1;
  const std::uint16_t type =
      static_cast<std::uint16_t>(MsgType::kQueryAccuracy);
  const std::uint64_t request_id = 77;
  std::memcpy(frame.data(), &length, 4);
  std::memcpy(frame.data() + 4, &magic, 4);
  std::memcpy(frame.data() + 8, &version, 2);
  std::memcpy(frame.data() + 10, &type, 2);
  std::memcpy(frame.data() + 12, &request_id, 8);
  std::memcpy(frame.data() + 20, &arch_, 8);
  const auto reply = poke(frame);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, MsgType::kError);
  EXPECT_EQ(reply->code, ErrorCode::kBadVersion);
  expect_alive();
}

TEST_F(ProtocolFuzzTest, RegisteredButMismatchedSpace) {
  // FBNet is a registered space, so the frame parses — but this server's
  // benchmark is MnasNet-backed, and the server must answer a typed
  // kUnknownSpace (not serve a value from the wrong space's surrogates).
  ++cases_;
  Client client(server_->socket_path());
  const std::vector<char> frame =
      encode_query_accuracy(21, arch_, SpaceId::kFbnet);
  ASSERT_TRUE(client.socket().send_all(frame));
  const Reply reply = client.recv_reply();
  EXPECT_EQ(reply.type, MsgType::kError);
  EXPECT_EQ(reply.code, ErrorCode::kUnknownSpace);
  client.ping();  // connection stays usable
  expect_alive();
}

TEST_F(ProtocolFuzzTest, SeededBitFlips) {
  // 96 seeded single-bit corruptions of valid frames. Any outcome in
  // {well-formed reply, typed error, clean close} is acceptable; crashes,
  // hangs, and sanitizer reports are not.
  Rng rng(12345);
  const std::vector<std::vector<char>> seeds = {
      encode_query_accuracy(1, arch_),
      encode_query_perf(2, kZcuLat, arch_),
      encode_ping(3),
  };
  for (int i = 0; i < 96; ++i) {
    std::vector<char> bytes = rng.pick(seeds);
    const std::size_t bit = rng.uniform_index(bytes.size() * 8);
    bytes[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(bytes[bit / 8]) ^ (1u << (bit % 8)));
    poke(bytes);  // any non-crashing outcome is a pass
  }
  expect_alive();
}

TEST_F(ProtocolFuzzTest, PayloadViolations) {
  // Payload-level violations are per-request: typed kError, connection
  // stays usable. Each case runs on one connection followed by a live
  // ping on that same connection.
  struct Case {
    std::vector<char> frame;
    ErrorCode want;
  };
  std::vector<Case> cases;

  // Unknown message types.
  for (const std::uint16_t type : {std::uint16_t{0}, std::uint16_t{99},
                                   std::uint16_t{255}, std::uint16_t{7000}}) {
    std::vector<char> f = encode_frame(static_cast<MsgType>(type), 5, {});
    cases.push_back({std::move(f), ErrorCode::kUnknownType});
  }
  // Short / long payloads for every typed request (v2 payloads lead with
  // a u16 space id; a valid one keeps these cases pure size violations).
  const std::uint16_t mnas = static_cast<std::uint16_t>(SpaceId::kMnasNet);
  cases.push_back({encode_frame(MsgType::kQueryAccuracy, 6, {}),
                   ErrorCode::kBadPayload});
  {
    std::vector<char> tail(6, 0);
    std::memcpy(tail.data(), &mnas, 2);
    cases.push_back({encode_frame(MsgType::kQueryAccuracy, 7, tail),
                     ErrorCode::kBadPayload});
    std::vector<char> fat(14, 0);
    std::memcpy(fat.data(), &mnas, 2);
    cases.push_back({encode_frame(MsgType::kQueryAccuracy, 8, fat),
                     ErrorCode::kBadPayload});
    std::vector<char> hello_short(4, 0);
    cases.push_back({encode_frame(MsgType::kHello, 9, hello_short),
                     ErrorCode::kBadPayload});
    std::vector<char> perf_short(2, 0);
    std::memcpy(perf_short.data(), &mnas, 2);
    cases.push_back({encode_frame(MsgType::kQueryPerf, 10, perf_short),
                     ErrorCode::kBadPayload});
  }
  // Out-of-range architecture index.
  {
    const std::uint64_t bad = MnasSpace::instance().cardinality();
    std::vector<char> payload(10);
    std::memcpy(payload.data(), &mnas, 2);
    std::memcpy(payload.data() + 2, &bad, 8);
    cases.push_back({encode_frame(MsgType::kQueryAccuracy, 11, payload),
                     ErrorCode::kBadArchIndex});
  }
  // Bad device / metric bytes (device 6 and 7 became npu-mobile and
  // cpu-server; metric 3 became Mem — 8 and 4 are the new fences).
  for (const int device : {8, 9, 255}) {
    std::vector<char> payload(12, 0);
    std::memcpy(payload.data(), &mnas, 2);
    payload[2] = static_cast<char>(device);
    std::memcpy(payload.data() + 4, &arch_, 8);
    cases.push_back({encode_frame(MsgType::kQueryPerf, 12, payload),
                     ErrorCode::kBadMetricKey});
  }
  {
    std::vector<char> payload(12, 0);
    std::memcpy(payload.data(), &mnas, 2);
    payload[3] = 4;  // metric out of range
    std::memcpy(payload.data() + 4, &arch_, 8);
    cases.push_back({encode_frame(MsgType::kQueryPerf, 13, payload),
                     ErrorCode::kBadMetricKey});
  }
  // Unknown space ids on every query shape: typed kUnknownSpace, checked
  // before the index so a wild id cannot reach space-specific decoding.
  for (const std::uint16_t space : {std::uint16_t{0}, std::uint16_t{3},
                                    std::uint16_t{0xFFFF}}) {
    std::vector<char> payload(10, 0);
    std::memcpy(payload.data(), &space, 2);
    std::memcpy(payload.data() + 2, &arch_, 8);
    cases.push_back({encode_frame(MsgType::kQueryAccuracy, 17, payload),
                     ErrorCode::kUnknownSpace});
    std::vector<char> perf(12, 0);
    std::memcpy(perf.data(), &space, 2);
    std::memcpy(perf.data() + 4, &arch_, 8);
    cases.push_back({encode_frame(MsgType::kQueryPerf, 18, perf),
                     ErrorCode::kUnknownSpace});
    std::vector<char> batch(6, 0);
    std::memcpy(batch.data(), &space, 2);
    cases.push_back({encode_frame(MsgType::kQueryAccuracyBatch, 19, batch),
                     ErrorCode::kUnknownSpace});
  }
  // Batch count lies: count larger than the rows present, and a count
  // over kMaxBatchRows with no rows at all.
  {
    std::vector<char> payload(2 + 4 + 8);
    const std::uint32_t count = 5;  // but only one row follows
    std::memcpy(payload.data(), &mnas, 2);
    std::memcpy(payload.data() + 2, &count, 4);
    std::memcpy(payload.data() + 6, &arch_, 8);
    cases.push_back({encode_frame(MsgType::kQueryAccuracyBatch, 14, payload),
                     ErrorCode::kBadPayload});
  }
  {
    std::vector<char> payload(6);
    const std::uint32_t count = kMaxBatchRows + 1;
    std::memcpy(payload.data(), &mnas, 2);
    std::memcpy(payload.data() + 2, &count, 4);
    cases.push_back({encode_frame(MsgType::kQueryAccuracyBatch, 15, payload),
                     ErrorCode::kBatchTooLarge});
  }
  // Response types sent as requests.
  for (const MsgType type : {MsgType::kValue, MsgType::kPong, MsgType::kBye}) {
    cases.push_back({encode_frame(type, 16, {}), ErrorCode::kUnknownType});
  }

  for (std::size_t i = 0; i < cases.size(); ++i) {
    ++cases_;
    Client client(server_->socket_path());
    ASSERT_TRUE(client.socket().send_all(cases[i].frame)) << "case " << i;
    const Reply reply = client.recv_reply();
    EXPECT_EQ(reply.type, MsgType::kError) << "case " << i;
    EXPECT_EQ(reply.code, cases[i].want) << "case " << i;
    // Same connection still serves well-formed requests.
    client.ping();
  }
  expect_alive();
}

TEST_F(ProtocolFuzzTest, GarbageStreams) {
  // Pure noise: random byte blobs of varying sizes. The first 4 bytes
  // are a length prefix by definition, so outcomes vary (bad length, bad
  // magic, or an eternally-incomplete frame the test ends by EOF); the
  // invariant is no crash and a live server.
  Rng rng(999);
  for (int i = 0; i < 24; ++i) {
    std::vector<char> bytes(1 + rng.uniform_index(200));
    for (char& b : bytes) {
      b = static_cast<char>(rng.uniform_index(256));
    }
    poke(bytes);
  }
  expect_alive();
}

TEST_F(ProtocolFuzzTest, ZCaseFloor) {
  // Named to run last (gtest runs fixture tests in definition order, but
  // the floor only counts poke()/case increments made above).
  EXPECT_GE(cases_, 150) << "fuzz corpus shrank below the contract floor";
}

}  // namespace
}  // namespace anb
