// The benchmark's query cache, exercised through the server: hit/miss
// accounting stays exact when the hammering comes from concurrent socket
// clients instead of in-process threads. The design is phased to keep the
// counts provable: a serial prime phase (every key is a fresh miss, and
// the blocking client guarantees no two flushes race the same key), a
// quiesce, then a concurrent hammer phase where every key is already
// published and so every lookup is a hit — at any scheduler thread count.

#include "anb/serve/server.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "anb/serve/client.hpp"
#include "serve_test_util.hpp"

namespace anb {
namespace {

using namespace anb::serve;
using namespace anb::serve_test;

class ServeCacheTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ServeCacheTest, ExactHitMissAccountingThroughServer) {
  const unsigned worker_threads = GetParam();
  AccelNASBench bench = make_bench(71);
  ASSERT_TRUE(bench.cache_enabled());
  const auto pool = distinct_indices(10, 81);

  ServeOptions options;
  options.scheduler.worker_threads = worker_threads;
  Server server(bench, options);
  server.start();

  // Phase 1 — prime: one client, one request in flight, every pool arch
  // once for accuracy and once for perf. Serial flushes, distinct keys:
  // exactly 2 * |pool| misses, zero hits.
  std::vector<double> acc(pool.size());
  std::vector<double> perf(pool.size());
  {
    Client client(server.socket_path());
    client.hello(1, 0);
    for (std::size_t i = 0; i < pool.size(); ++i) {
      acc[i] = client.query_accuracy(pool[i]);
      perf[i] = client.query_perf(kA100Thr, pool[i]);
    }
  }
  QueryCacheStats stats = bench.cache_stats();
  EXPECT_EQ(stats.misses, 2 * pool.size());
  EXPECT_EQ(stats.hits, 0u);

  // Phase 2 — hammer: every key is published, so concurrent clients can
  // only hit; the counters must come out exact, not racy-approximate.
  constexpr std::size_t kClients = 5;
  constexpr std::size_t kRounds = 8;
  std::vector<std::thread> threads;
  for (std::uint64_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(server.socket_path());
      client.hello(10 + c, 0);
      for (std::size_t round = 0; round < kRounds; ++round) {
        // Mix scalar and batch requests; values must be the primed ones
        // bit-for-bit.
        for (std::size_t i = 0; i < pool.size(); ++i) {
          EXPECT_EQ(client.query_accuracy(pool[i]), acc[i]);
        }
        const auto batch = client.query_perf_batch(kA100Thr, pool);
        for (std::size_t i = 0; i < pool.size(); ++i) {
          EXPECT_EQ(batch[i], perf[i]);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  server.stop();

  stats = bench.cache_stats();
  EXPECT_EQ(stats.misses, 2 * pool.size());  // unchanged
  EXPECT_EQ(stats.hits, kClients * kRounds * 2 * pool.size());

  // Every request produced exactly one ok response.
  const ServeReport report = server.report();
  EXPECT_EQ(report.responses_ok,
            report.requests_received);  // hellos + queries, no faults
  EXPECT_EQ(report.responses_error, 0u);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ServeCacheTest,
                         ::testing::Values(1u, 0u),
                         [](const ::testing::TestParamInfo<unsigned>& param) {
                           return param.param == 0 ? "HardwareThreads"
                                                   : "OneThread";
                         });

}  // namespace
}  // namespace anb
