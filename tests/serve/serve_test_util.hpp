#pragma once

// Shared fixture helpers for the serve test suites: a small fitted
// benchmark (accuracy + two performance targets), distinct-architecture
// sampling, and the serial oracle the determinism tests compare against.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "anb/anb/benchmark.hpp"
#include "anb/anb/tuning.hpp"
#include "anb/fbnet/fbnet_space.hpp"

namespace anb::serve_test {

inline std::unique_ptr<Surrogate> fitted_model(
    std::uint64_t seed, double scale = 1.0,
    const SearchSpace& sp = MnasSpace::instance()) {
  Dataset ds(static_cast<std::size_t>(sp.feature_dim()));
  Rng rng(seed);
  for (int i = 0; i < 150; ++i) {
    const Arch a = sp.sample(rng);
    const auto f = sp.features(a);
    double y = 0.0;
    for (double v : f) y += v;
    ds.add(f, scale * y + rng.normal(0.0, 0.01));
  }
  auto model = make_default_surrogate(SurrogateKind::kXgb);
  model->fit(ds, rng);
  return model;
}

inline constexpr MetricKey kA100Thr{DeviceKind::kA100,
                                    PerfMetric::kThroughput};
inline constexpr MetricKey kZcuLat{DeviceKind::kZcu102, PerfMetric::kLatency};

/// Accuracy + two perf targets, so requests spread over three scheduler
/// buckets. Deterministic in `seed`; serves the given space's genotypes
/// (MnasNet by default, matching the pre-multi-space suites).
inline AccelNASBench make_bench(std::uint64_t seed = 1,
                                const SearchSpace& sp =
                                    MnasSpace::instance()) {
  AccelNASBench bench;
  bench.set_space(sp.id());
  bench.set_accuracy_surrogate(fitted_model(seed, 1.0, sp));
  bench.set_perf_surrogate(kA100Thr, fitted_model(seed + 1, 100.0, sp));
  bench.set_perf_surrogate(kZcuLat, fitted_model(seed + 2, 0.5, sp));
  return bench;
}

/// `n` pairwise-distinct architecture indices in the given space.
inline std::vector<std::uint64_t> distinct_indices(
    std::size_t n, std::uint64_t seed,
    const SearchSpace& sp = MnasSpace::instance()) {
  std::set<std::uint64_t> seen;
  std::vector<std::uint64_t> out;
  Rng rng(seed);
  while (out.size() < n) {
    const std::uint64_t index = sp.to_index(sp.sample(rng));
    if (seen.insert(index).second) out.push_back(index);
  }
  return out;
}

}  // namespace anb::serve_test
