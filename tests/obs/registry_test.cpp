#include "anb/obs/registry.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "anb/util/error.hpp"
#include "anb/util/parallel.hpp"

namespace anb {
namespace {

const obs::MetricValue* find_metric(const std::vector<obs::MetricValue>& snapshot,
                               const std::string& name) {
  for (const obs::MetricValue& m : snapshot)
    if (m.name == name) return &m;
  return nullptr;
}

TEST(ObsRegistryTest, CounterAccumulates) {
  obs::reset_metrics();
  obs::Counter& c = obs::counter("test.registry.basic");
  c.add(3);
  c.increment();
  EXPECT_EQ(c.value(), 4u);
  EXPECT_EQ(c.name(), "test.registry.basic");
}

TEST(ObsRegistryTest, HandlesAreStable) {
  obs::reset_metrics();
  obs::Counter& a = obs::counter("test.registry.stable");
  obs::Counter& b = obs::counter("test.registry.stable");
  EXPECT_EQ(&a, &b);
  a.add(1);
  EXPECT_EQ(b.value(), 1u);
}

TEST(ObsRegistryTest, KindMismatchThrows) {
  obs::counter("test.registry.kind");
  EXPECT_THROW(obs::gauge("test.registry.kind"), Error);
  EXPECT_THROW(obs::histogram("test.registry.kind"), Error);
}

TEST(ObsRegistryTest, GaugeHoldsLastValue) {
  obs::reset_metrics();
  obs::Gauge& g = obs::gauge("test.registry.gauge");
  g.set(2.5);
  g.set(-7.25);
  EXPECT_EQ(g.value(), -7.25);
}

TEST(ObsRegistryTest, HistogramBucketsAndSum) {
  obs::reset_metrics();
  obs::Histogram& h = obs::histogram("test.registry.hist");
  h.observe(0);   // bucket 0
  h.observe(1);   // bucket 1 (bit_width 1)
  h.observe(2);   // bucket 2
  h.observe(3);   // bucket 2
  h.observe(1'000'000);  // large values clamp to the last bucket band
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1'000'006u);
  const auto buckets = h.buckets();
  ASSERT_EQ(buckets.size(), obs::kHistogramBuckets);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 2u);
  EXPECT_EQ(buckets[obs::kHistogramBuckets - 1], 1u);
}

TEST(ObsRegistryTest, SnapshotIsSortedByName) {
  obs::reset_metrics();
  obs::counter("test.snapshot.zz").add(1);
  obs::counter("test.snapshot.aa").add(2);
  const auto snapshot = obs::snapshot_metrics();
  for (std::size_t i = 1; i < snapshot.size(); ++i)
    EXPECT_LT(snapshot[i - 1].name, snapshot[i].name);
  const obs::MetricValue* aa = find_metric(snapshot, "test.snapshot.aa");
  ASSERT_NE(aa, nullptr);
  EXPECT_EQ(aa->kind, obs::MetricKind::kCounter);
  EXPECT_EQ(aa->value, 2u);
}

TEST(ObsRegistryTest, ResetZeroesEverything) {
  obs::Counter& c = obs::counter("test.registry.reset");
  obs::Gauge& g = obs::gauge("test.registry.reset_gauge");
  c.add(9);
  g.set(1.0);
  obs::reset_metrics();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
}

TEST(ObsRegistryTest, DisabledCountersDoNotAdvance) {
  obs::reset_metrics();
  obs::Counter& c = obs::counter("test.registry.disabled");
  obs::set_metrics_enabled(false);
  c.add(5);
  obs::set_metrics_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  c.add(2);
  EXPECT_EQ(c.value(), 2u);
}

// The determinism contract: counter totals are sums of uint64 increments,
// so they are bit-identical at any thread count — worker shards merge by
// addition, and retired shards (parallel_for workers are short-lived) fold
// into the same totals.
TEST(ObsRegistryTest, CountersAreThreadCountInvariant) {
  obs::Counter& c = obs::counter("test.registry.invariant");
  obs::Histogram& h = obs::histogram("test.registry.invariant_hist");
  constexpr std::size_t kItems = 500;

  std::vector<std::uint64_t> counts;
  std::vector<std::uint64_t> sums;
  for (unsigned threads : {1u, 2u, 0u}) {  // 0 = hardware concurrency
    obs::reset_metrics();
    parallel_for(
        kItems,
        [&](std::size_t i) {
          c.add(i % 7 + 1);
          h.observe(i);
        },
        threads);
    counts.push_back(c.value());
    sums.push_back(h.sum());
    EXPECT_EQ(h.count(), kItems);
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(counts[0], counts[2]);
  EXPECT_EQ(sums[0], sums[1]);
  EXPECT_EQ(sums[0], sums[2]);
}

TEST(ObsRegistryTest, CsvListsCountersAndHistograms) {
  obs::reset_metrics();
  obs::counter("test.csv.counter").add(4);
  obs::histogram("test.csv.hist").observe(3);
  const std::string csv = obs::metrics_csv_string();
  EXPECT_NE(csv.find("metric,kind,value"), std::string::npos);
  EXPECT_NE(csv.find("test.csv.counter,counter,4"), std::string::npos);
  EXPECT_NE(csv.find("test.csv.hist.count,histogram,1"), std::string::npos);
  EXPECT_NE(csv.find("test.csv.hist.sum,histogram,3"), std::string::npos);
}

}  // namespace
}  // namespace anb
