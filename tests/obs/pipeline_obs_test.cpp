// End-to-end observability contract over a seeded mini-pipeline:
//
//  1. Every registry counter and histogram is bit-identical whatever the
//     thread count, and identical whether or not tracing is enabled — the
//     acceptance contract of the obs subsystem. Span durations are
//     explicitly exempt (they measure wall-clock).
//  2. The include_timing=false plain-text report over the 1-thread run is
//     compared against a committed golden: any accidental nondeterminism
//     or unintended instrumentation change flips the text and fails here.
//     If a legitimate instrumentation change lands, regenerate by pasting
//     the "actual" report from the failure output.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "anb/anb/pipeline.hpp"
#include "anb/obs/obs.hpp"
#include "anb/surrogate/flat_forest.hpp"
#include "anb/util/parallel.hpp"

namespace anb {
namespace {

/// Whether the SIMD descent engages (and thus whether anb.query.simd.*
/// metrics exist) depends on the host CPU. Pinning the interleaved path
/// keeps both the golden report and the cross-thread snapshots
/// hardware-independent; the SIMD counters get their own coverage in
/// tests/surrogate/simd_descent_test.cpp.
class PinInterleavedEnv : public ::testing::Environment {
 public:
  void SetUp() override {
    set_descent_path_override(DescentPath::kInterleaved);
  }
  void TearDown() override {
    set_descent_path_override(DescentPath::kAuto);
  }
};

const ::testing::Environment* const kPinned =
    ::testing::AddGlobalTestEnvironment(new PinInterleavedEnv);

/// Collect + fit + scalar/batched queries, small enough for test time but
/// crossing every instrumented layer (collection, fitting, queries, cache).
void run_mini_pipeline() {
  PipelineOptions options;
  options.n_archs = 250;
  const PipelineResult result = construct_benchmark(options);

  Rng rng(7);
  std::vector<Arch> archs;
  for (int i = 0; i < 32; ++i) archs.push_back(MnasSpace::instance().sample(rng));
  result.bench.query_accuracy_batch(archs);
  for (const Arch& a : archs) result.bench.query_accuracy(a);
  result.bench.query_perf_batch(
      archs, MetricKey{DeviceKind::kA100, PerfMetric::kThroughput});
}

/// Registry snapshot of one pipeline run, gauges removed (they are
/// last-write-wins and excluded from the determinism contract).
std::vector<obs::MetricValue> snapshot_run(unsigned threads, bool trace) {
  set_default_num_threads(threads);
  obs::set_trace_enabled(trace);
  obs::clear_trace_events();
  obs::reset_metrics();
  run_mini_pipeline();
  std::vector<obs::MetricValue> snapshot = obs::snapshot_metrics();
  std::erase_if(snapshot, [](const obs::MetricValue& m) {
    return m.kind == obs::MetricKind::kGauge;
  });
  set_default_num_threads(0);
  obs::set_trace_enabled(false);
  return snapshot;
}

void expect_identical(const std::vector<obs::MetricValue>& a,
                      const std::vector<obs::MetricValue>& b,
                      const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name) << label;
    EXPECT_EQ(a[i].value, b[i].value) << label << ": " << a[i].name;
    EXPECT_EQ(a[i].sum, b[i].sum) << label << ": " << a[i].name;
    EXPECT_EQ(a[i].buckets, b[i].buckets) << label << ": " << a[i].name;
  }
}

TEST(PipelineObsTest, CountersInvariantAcrossThreadsAndTracing) {
  const auto one = snapshot_run(1, /*trace=*/false);
  const auto two = snapshot_run(2, /*trace=*/false);
  const auto hw = snapshot_run(0, /*trace=*/false);
  const auto traced = snapshot_run(2, /*trace=*/true);
  expect_identical(one, two, "1 vs 2 threads");
  expect_identical(one, hw, "1 vs hw threads");
  expect_identical(one, traced, "untraced vs traced");
}

TEST(PipelineObsTest, GoldenReportAtOneThread) {
  set_default_num_threads(1);
  obs::set_trace_enabled(true);
  obs::clear_trace_events();
  obs::reset_metrics();
  run_mini_pipeline();
  const std::string actual =
      obs::report_text(obs::ReportOptions{/*include_timing=*/false});
  obs::clear_trace_events();
  obs::set_trace_enabled(false);
  set_default_num_threads(0);

  const std::string expected =
      R"GOLD(== spans ==
anb.pipeline.construct  count=1
  anb.pipeline.collect  count=1
    anb.collect  count=1
      anb.collect.accuracy  count=1
        anb.parallel.worker  count=1
      anb.collect.ir_build  count=1
        anb.parallel.worker  count=1
      anb.collect.measure.ANB-A100-Thr  count=1
        anb.parallel.worker  count=1
      anb.collect.measure.ANB-RTX-Thr  count=1
        anb.parallel.worker  count=1
      anb.collect.measure.ANB-TPUv2-Thr  count=1
        anb.parallel.worker  count=1
      anb.collect.measure.ANB-TPUv3-Thr  count=1
        anb.parallel.worker  count=1
      anb.collect.measure.ANB-VCK-Lat  count=1
        anb.parallel.worker  count=1
      anb.collect.measure.ANB-VCK-Thr  count=1
        anb.parallel.worker  count=1
      anb.collect.measure.ANB-ZCU-Lat  count=1
        anb.parallel.worker  count=1
      anb.collect.measure.ANB-ZCU-Thr  count=1
        anb.parallel.worker  count=1
  anb.pipeline.fit  count=1
    anb.parallel.worker  count=1
      anb.fit.gbdt  count=9
      anb.parallel.worker  count=9
anb.query.batch  count=2
== metrics ==
anb.collect.archs = 250
anb.collect.attempts = 4000
anb.collect.failed_datasets = 0
anb.collect.outlier_resolves = 0
anb.collect.quarantined = 0
anb.collect.rejected_outliers = 0
anb.collect.retries = 0
anb.collect.timeouts = 0
anb.collect.transient_errors = 0
anb.fit.gbdt.count = 9
anb.parallel.calls = 20
anb.parallel.items = 3076
anb.query.batch.count = 2
anb.query.batch.rows = 64
anb.query.batch.size: count=2 sum=64 buckets=[6:2]
anb.query.cache.hits = 32
anb.query.cache.misses = 64
anb.query.count = 32
)GOLD";
  EXPECT_EQ(actual, expected) << "actual report:\n" << actual;
}

}  // namespace
}  // namespace anb
