#include "anb/obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>

#include "anb/obs/registry.hpp"
#include "anb/obs/span.hpp"
#include "anb/util/json.hpp"

namespace anb {
namespace {

class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_trace_enabled(true);
    obs::clear_trace_events();
  }
  void TearDown() override {
    obs::clear_trace_events();
    obs::set_trace_enabled(false);
  }
};

TEST_F(ObsTraceTest, DisabledSpansRecordNothing) {
  obs::set_trace_enabled(false);
  {
    ANB_SPAN("test.trace.disabled");
  }
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST_F(ObsTraceTest, SpansRecordAndNest) {
  {
    obs::Span outer("test.trace.outer");
    {
      ANB_SPAN("test.trace.inner");
    }
  }
  EXPECT_EQ(obs::trace_event_count(), 2u);
  EXPECT_EQ(obs::trace_dropped_count(), 0u);
}

// The exported JSON must be loadable by chrome://tracing: a traceEvents
// array of ph="X" complete events with name/ts/dur/pid/tid fields.
TEST_F(ObsTraceTest, JsonMatchesChromeTracingSchema) {
  {
    obs::Span span("test.trace.schema");
    span.arg("rows", 42.0);
  }
  const Json j = Json::parse(obs::trace_json_string());
  ASSERT_TRUE(j.contains("traceEvents"));
  const auto& events = j.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 1u);
  const Json& e = events[0];
  EXPECT_EQ(e.at("name").as_string(), "test.trace.schema");
  EXPECT_EQ(e.at("ph").as_string(), "X");
  EXPECT_EQ(e.at("pid").as_int(), 1);
  EXPECT_GE(e.at("tid").as_int(), 1);
  EXPECT_GE(e.at("ts").as_number(), 0.0);
  EXPECT_GE(e.at("dur").as_number(), 0.0);
  ASSERT_TRUE(e.contains("args"));
  EXPECT_EQ(e.at("args").at("rows").as_number(), 42.0);
}

TEST_F(ObsTraceTest, NestedSpansOnOneThreadShareTid) {
  {
    obs::Span outer("test.trace.parent");
    obs::Span inner("test.trace.child");
  }
  const Json j = Json::parse(obs::trace_json_string());
  const auto& events = j.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("tid").as_int(), events[1].at("tid").as_int());
  // The child opened after and closed before the parent.
  const Json* parent = nullptr;
  const Json* child = nullptr;
  for (const Json& e : events) {
    (e.at("name").as_string() == "test.trace.parent" ? parent : child) = &e;
  }
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_GE(child->at("ts").as_number(), parent->at("ts").as_number());
  EXPECT_LE(child->at("ts").as_number() + child->at("dur").as_number(),
            parent->at("ts").as_number() + parent->at("dur").as_number() +
                1e-3);
}

TEST_F(ObsTraceTest, ClearResetsEventCount) {
  {
    ANB_SPAN("test.trace.clear");
  }
  EXPECT_EQ(obs::trace_event_count(), 1u);
  obs::clear_trace_events();
  EXPECT_EQ(obs::trace_event_count(), 0u);
  EXPECT_EQ(Json::parse(obs::trace_json_string())
                .at("traceEvents")
                .as_array()
                .size(),
            0u);
}

// Tracing must not perturb the metrics contract: counters advance by the
// same amounts whether or not spans are being recorded.
TEST_F(ObsTraceTest, CountersIdenticalWithTracingOnAndOff) {
  obs::Counter& c = obs::counter("test.trace.counter_parity");
  auto workload = [&] {
    for (int i = 0; i < 100; ++i) {
      ANB_SPAN("test.trace.parity_span");
      c.add(2);
    }
  };
  obs::reset_metrics();
  workload();
  const std::uint64_t with_trace = c.value();

  obs::set_trace_enabled(false);
  obs::reset_metrics();
  workload();
  EXPECT_EQ(c.value(), with_trace);
}

TEST_F(ObsTraceTest, ReportListsSpansAndCounters) {
  obs::reset_metrics();
  obs::counter("test.trace.report_counter").add(7);
  {
    ANB_SPAN("test.trace.report_span");
  }
  const std::string report = obs::report_text();
  EXPECT_NE(report.find("test.trace.report_span"), std::string::npos);
  EXPECT_NE(report.find("count=1"), std::string::npos);
  EXPECT_NE(report.find("test.trace.report_counter = 7"), std::string::npos);

  // include_timing=false drops durations (and gauges) so the output is a
  // pure function of the workload — the golden-report test relies on it.
  const std::string stable =
      obs::report_text(obs::ReportOptions{/*include_timing=*/false});
  EXPECT_EQ(stable.find("total="), std::string::npos);
  EXPECT_EQ(stable.find("mean="), std::string::npos);
}

}  // namespace
}  // namespace anb
