#include <gtest/gtest.h>

#include <cmath>

#include "anb/nas/evolution.hpp"
#include "anb/nas/random_search.hpp"
#include "anb/nas/reinforce.hpp"
#include "anb/util/error.hpp"

namespace anb {
namespace {

const SearchSpace& sp() { return MnasSpace::instance(); }

/// Deterministic synthetic objective: rewards expansion-6 + SE + depth.
double synthetic_objective(const Arch& genotype) {
  const Architecture arch = MnasSpace::to_blocks(genotype);
  double score = 0.0;
  for (const auto& blk : arch.blocks) {
    score += blk.expansion == 6 ? 1.0 : (blk.expansion == 4 ? 0.5 : 0.0);
    score += blk.se ? 0.5 : 0.0;
    score += 0.2 * blk.layers;
    score += blk.kernel == 5 ? 0.1 : 0.0;
  }
  return score;
}

constexpr double kMaxObjective = 7.0 * (1.0 + 0.5 + 0.6 + 0.1);

TEST(SearchTrajectoryTest, IncumbentIsRunningMax) {
  SearchTrajectory traj;
  Rng rng(1);
  const Arch a = sp().sample(rng);
  traj.add(a, 1.0);
  traj.add(a, 0.5);
  traj.add(a, 2.0);
  EXPECT_EQ(traj.incumbent, (std::vector<double>{1.0, 1.0, 2.0}));
  EXPECT_DOUBLE_EQ(traj.best_value(), 2.0);
}

TEST(SearchTrajectoryTest, BestArchMatchesBestValue) {
  SearchTrajectory traj;
  Rng rng(2);
  Arch best;
  double best_value = -1.0;
  for (int i = 0; i < 20; ++i) {
    const Arch a = sp().sample(rng);
    const double v = synthetic_objective(a);
    traj.add(a, v);
    if (v > best_value) {
      best_value = v;
      best = a;
    }
  }
  EXPECT_EQ(traj.best_arch(), best);
  EXPECT_THROW(SearchTrajectory{}.best_value(), Error);
}

TEST(RandomSearchNasTest, BudgetRespectedAndValid) {
  RandomSearchNas optimizer;
  Rng rng(3);
  const auto traj = optimizer.run(synthetic_objective, 100, rng);
  EXPECT_EQ(traj.size(), 100u);
  for (const auto& arch : traj.archs) sp().validate(arch);
  EXPECT_EQ(optimizer.name(), "RS");
}

TEST(RegularizedEvolutionTest, ImprovesOverRandomInit) {
  RegularizedEvolution optimizer;
  Rng rng(4);
  const auto traj = optimizer.run(synthetic_objective, 400, rng);
  // Mean of the last 50 evaluations should beat the first 50 (selection
  // pressure), not just the incumbent.
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 50; ++i) {
    early += traj.values[static_cast<std::size_t>(i)];
    late += traj.values[traj.values.size() - 1 - static_cast<std::size_t>(i)];
  }
  EXPECT_GT(late, early + 25.0);
}

TEST(RegularizedEvolutionTest, BeatsRandomSearch) {
  double re_total = 0.0, rs_total = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    RegularizedEvolution re;
    RandomSearchNas rs;
    Rng r1(seed + 10), r2(seed + 20);
    re_total += re.run(synthetic_objective, 300, r1).best_value();
    rs_total += rs.run(synthetic_objective, 300, r2).best_value();
  }
  EXPECT_GT(re_total, rs_total);
}

TEST(RegularizedEvolutionTest, SmallBudgetStillWorks) {
  RegularizedEvolutionParams params;
  params.population_size = 50;
  RegularizedEvolution optimizer(params);
  Rng rng(5);
  // Budget below the population size: seeds only.
  const auto traj = optimizer.run(synthetic_objective, 10, rng);
  EXPECT_EQ(traj.size(), 10u);
}

TEST(RegularizedEvolutionTest, ParamValidation) {
  RegularizedEvolutionParams params;
  params.population_size = 1;
  EXPECT_THROW(RegularizedEvolution{params}, Error);
  params.population_size = 10;
  params.sample_size = 11;
  EXPECT_THROW(RegularizedEvolution{params}, Error);
}

TEST(ReinforceTest, ConvergesTowardGoodRegion) {
  Reinforce optimizer;
  Rng rng(6);
  const auto traj = optimizer.run(synthetic_objective, 600, rng);
  double late = 0.0;
  for (int i = 0; i < 50; ++i)
    late += traj.values[traj.values.size() - 1 - static_cast<std::size_t>(i)];
  late /= 50.0;
  // Random sampling averages ~ (0.5 + 0.25 + 0.4 + 0.05) * 7 = 8.4.
  EXPECT_GT(late, 10.5);
  EXPECT_GT(traj.best_value(), 0.85 * kMaxObjective);
}

TEST(ReinforceTest, PolicySnapshotIsDistribution) {
  Reinforce optimizer;
  Rng rng(7);
  optimizer.run(synthetic_objective, 50, rng);
  const auto& policy = optimizer.last_policy();
  ASSERT_EQ(policy.size(), static_cast<std::size_t>(MnasSpace::kNumDecisions));
  for (const auto& p : policy) {
    double total = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(ReinforceTest, PolicyConcentratesOnBestOption) {
  // With a strong, clean signal the expansion heads should favor e=6.
  Reinforce optimizer;
  Rng rng(8);
  optimizer.run(synthetic_objective, 1500, rng);
  const auto& policy = optimizer.last_policy();
  int favored = 0;
  for (int b = 0; b < kNumBlocks; ++b) {
    const auto& expansion_head = policy[static_cast<std::size_t>(4 * b)];
    if (expansion_head[2] > 0.5) ++favored;  // option index 2 = e6
  }
  EXPECT_GE(favored, 5);
}

TEST(ReinforceTest, ParamValidation) {
  ReinforceParams params;
  params.learning_rate = 0.0;
  EXPECT_THROW(Reinforce{params}, Error);
  params.learning_rate = 0.1;
  params.baseline_decay = 1.0;
  EXPECT_THROW(Reinforce{params}, Error);
}

TEST(MnasnetRewardTest, ShapeAndDirections) {
  // Throughput above target is rewarded with w > 0.
  EXPECT_GT(mnasnet_reward(0.7, 2000.0, 1000.0, 0.07),
            mnasnet_reward(0.7, 500.0, 1000.0, 0.07));
  // Latency below target is rewarded with w < 0.
  EXPECT_GT(mnasnet_reward(0.7, 2.0, 4.0, -0.07),
            mnasnet_reward(0.7, 8.0, 4.0, -0.07));
  // At the target the reward is exactly the accuracy.
  EXPECT_DOUBLE_EQ(mnasnet_reward(0.7, 1000.0, 1000.0, 0.07), 0.7);
  EXPECT_THROW(mnasnet_reward(0.7, 0.0, 1.0, 0.07), Error);
}

TEST(OptimizersTest, CommonBudgetValidation) {
  Rng rng(9);
  RandomSearchNas rs;
  EXPECT_THROW(rs.run(synthetic_objective, 0, rng), Error);
  EXPECT_THROW(rs.run(nullptr, 10, rng), Error);
  RegularizedEvolution re;
  EXPECT_THROW(re.run(synthetic_objective, 0, rng), Error);
  Reinforce rf;
  EXPECT_THROW(rf.run(synthetic_objective, -1, rng), Error);
}

}  // namespace
}  // namespace anb
