// Golden-trajectory regression tests: every NAS optimizer is run with a
// pinned seed against a deterministic objective and compared to a committed
// reference (first/last evaluation + a full-trajectory checksum). Any
// change to an optimizer's RNG discipline, selection logic, or evaluation
// order — however subtle — flips the checksum and fails here.
//
// The objective uses only exact binary fractions (1, 0.5, 0.25, 0.125,
// 1/64), so every score is an exact double: no rounding, no
// FMA-contraction sensitivity, identical bits on every platform. If a
// legitimate algorithm change lands, regenerate the constants by running
// this test and pasting the "actual" strings from the failure output.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <string>

#include "anb/nas/evolution.hpp"
#include "anb/nas/nsga2.hpp"
#include "anb/nas/random_search.hpp"
#include "anb/nas/reinforce.hpp"
#include "anb/nas/successive_halving.hpp"

namespace anb {
namespace {

const SearchSpace& sp() { return MnasSpace::instance(); }

/// Deterministic objective over exact binary fractions (see header note).
double golden_objective(const Arch& genotype) {
  const Architecture arch = MnasSpace::to_blocks(genotype);
  double score = 0.0;
  for (const auto& blk : arch.blocks) {
    score += blk.expansion == 6 ? 1.0 : 0.0;
    score += blk.se ? 0.5 : 0.0;
    score += 0.25 * blk.layers + (blk.kernel == 5 ? 0.125 : 0.0);
  }
  return score;
}

/// Second objective for the bi-objective run: prefers shallow, narrow
/// models (a stand-in for -latency), also an exact binary fraction.
double golden_objective2(const Arch& genotype) {
  const Architecture arch = MnasSpace::to_blocks(genotype);
  double score = 0.0;
  for (const auto& blk : arch.blocks) {
    score -= 0.5 * blk.layers + (blk.expansion == 6 ? 1.0 : 0.0) +
             (blk.se ? 0.25 : 0.0);
  }
  return score;
}

class Checksum {
 public:
  void add_arch(const Arch& arch) { mix(sp().to_index(arch)); }
  void add_value(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  void add_index(std::size_t i) { mix(static_cast<std::uint64_t>(i)); }
  std::uint64_t value() const { return h_; }

 private:
  void mix(std::uint64_t x) { h_ = hash_combine(h_, x); }
  std::uint64_t h_ = 0x9E3779B97F4A7C15ULL;
};

/// "n=<evals> first=<arch>:<value> last=<arch>:<value> sum=<checksum>" —
/// exact-precision doubles via hexfloat, one line per golden constant.
std::string summarize(const SearchTrajectory& t) {
  Checksum sum;
  for (std::size_t i = 0; i < t.size(); ++i) {
    sum.add_arch(t.archs[i]);
    sum.add_value(t.values[i]);
    sum.add_value(t.incumbent[i]);
  }
  std::ostringstream os;
  os << "n=" << t.size() << " first=" << sp().to_index(t.archs.front())
     << ":" << std::hexfloat << t.values.front() << std::defaultfloat
     << " last=" << sp().to_index(t.archs.back()) << ":"
     << std::hexfloat << t.values.back() << std::defaultfloat << " sum=0x"
     << std::hex << sum.value();
  return os.str();
}

TEST(GoldenTrajectoryTest, RandomSearch) {
  RandomSearchNas rs;
  Rng rng(2024);
  const SearchTrajectory t = rs.run(golden_objective, 48, rng);
  EXPECT_EQ(summarize(t), "n=48 first=50513225083:0x1.14p+3 last=28453743428:0x1.dp+2 sum=0x8df37065b9465501");
}

TEST(GoldenTrajectoryTest, RegularizedEvolution) {
  RegularizedEvolutionParams p;
  p.population_size = 12;
  p.sample_size = 4;
  RegularizedEvolution re(p);
  Rng rng(2025);
  const SearchTrajectory t = re.run(golden_objective, 60, rng);
  EXPECT_EQ(summarize(t), "n=60 first=5033899219:0x1.2p+3 last=75987481031:0x1.74p+3 sum=0xc1ded6f8eb110bef");
}

TEST(GoldenTrajectoryTest, Reinforce) {
  Reinforce rf;
  Rng rng(2026);
  const SearchTrajectory t = rf.run(golden_objective, 60, rng);
  EXPECT_EQ(summarize(t), "n=60 first=39170190124:0x1.58p+3 last=69596466227:0x1.a4p+3 sum=0xa746475bea21a03f");
}

TEST(GoldenTrajectoryTest, Nsga2) {
  Nsga2Params p;
  p.population_size = 12;
  const Nsga2 nsga2(p);
  Rng rng(2027);
  const Nsga2Result r = nsga2.run(
      [](const Arch& a) {
        return std::make_pair(golden_objective(a), golden_objective2(a));
      },
      60, rng);

  Checksum sum;
  for (std::size_t i = 0; i < r.archs.size(); ++i) {
    sum.add_arch(r.archs[i]);
    sum.add_value(r.obj1[i]);
    sum.add_value(r.obj2[i]);
  }
  for (const std::size_t i : r.front) sum.add_index(i);
  std::ostringstream os;
  os << "n=" << r.archs.size() << " front=" << r.front.size() << " first="
     << sp().to_index(r.archs.front()) << " last="
     << sp().to_index(r.archs.back()) << " sum=0x" << std::hex
     << sum.value();
  EXPECT_EQ(os.str(), "n=60 front=11 first=4679502362 last=43390218165 sum=0xc83fb80b180c01a4");
}

TEST(GoldenTrajectoryTest, SuccessiveHalving) {
  // Budget-aware oracle in exact binary fractions: maturity ramps in
  // steps of 1/64 per epoch (capped at 1), cost is 1/64 hour per epoch.
  const BudgetedOracle oracle = [](const Arch& a, int epochs) {
    BudgetedEval e;
    const double maturity = std::min(1.0, static_cast<double>(epochs) / 64.0);
    e.accuracy = golden_objective(a) * maturity;
    e.cost_hours = static_cast<double>(epochs) / 64.0;
    return e;
  };
  SuccessiveHalvingParams p;
  p.initial_population = 27;
  const SuccessiveHalving sh(p);
  Rng rng(2028);
  const SuccessiveHalvingResult r = sh.run(oracle, rng);

  Checksum sum;
  for (const auto& e : r.evals) {
    sum.add_arch(e.arch);
    sum.add_value(e.accuracy);
    sum.add_index(static_cast<std::size_t>(e.epochs));
  }
  std::ostringstream os;
  os << "evals=" << r.evals.size() << " rounds=" << r.rounds << " best="
     << sp().to_index(r.best) << ":" << std::hexfloat
     << r.best_accuracy << " cost=" << r.total_cost_hours << std::defaultfloat
     << " sum=0x" << std::hex << sum.value();
  EXPECT_EQ(os.str(), "evals=39 rounds=3 best=72322762493:0x1.c2p+2 cost=0x1.95p+2 sum=0x8956a719740406dd");
}

}  // namespace
}  // namespace anb
