// Regression tests for the run()/run_batched() equivalence contract: for
// any fixed seed, evaluating populations through a batched oracle must
// reproduce the scalar trajectory EXACTLY — same architectures, same
// values, same RNG stream. This is what lets the harness switch the NAS
// optimizers to AccelNASBench's batched query path without perturbing any
// published trajectory.

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "anb/anb/benchmark.hpp"
#include "anb/anb/tuning.hpp"
#include "anb/nas/evolution.hpp"
#include "anb/nas/nsga2.hpp"
#include "anb/nas/random_search.hpp"
#include "anb/nas/reinforce.hpp"
#include "anb/nas/successive_halving.hpp"

namespace anb {
namespace {

const SearchSpace& sp() { return MnasSpace::instance(); }

/// Deterministic synthetic objective (no surrogate, no RNG).
double synthetic_objective(const Arch& genotype) {
  const Architecture arch = MnasSpace::to_blocks(genotype);
  double score = 0.0;
  for (const auto& blk : arch.blocks) {
    score += blk.expansion == 6 ? 1.0 : 0.0;
    score += blk.se ? 0.5 : 0.0;
    score += 0.2 * blk.layers + (blk.kernel == 5 ? 0.1 : 0.0);
  }
  return score;
}

std::unique_ptr<Surrogate> fitted_model(std::uint64_t seed,
                                        double scale = 1.0) {
  Dataset ds(static_cast<std::size_t>(sp().feature_dim()));
  Rng rng(seed);
  for (int i = 0; i < 150; ++i) {
    const Arch a = sp().sample(rng);
    const auto f = sp().features(a);
    double y = 0.0;
    for (double v : f) y += v;
    ds.add(f, scale * y + rng.normal(0.0, 0.01));
  }
  auto model = make_default_surrogate(SurrogateKind::kXgb);
  model->fit(ds, rng);
  return model;
}

AccelNASBench make_bench() {
  AccelNASBench bench;
  bench.set_accuracy_surrogate(fitted_model(1));
  bench.set_perf_surrogate(MetricKey{DeviceKind::kA100, PerfMetric::kThroughput},
                           fitted_model(2, 100.0));
  return bench;
}

void expect_same_trajectory(const SearchTrajectory& scalar,
                            const SearchTrajectory& batched) {
  ASSERT_EQ(scalar.size(), batched.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(sp().to_index(scalar.archs[i]),
              sp().to_index(batched.archs[i]))
        << "arch " << i;
    EXPECT_EQ(scalar.values[i], batched.values[i]) << "value " << i;
    EXPECT_EQ(scalar.incumbent[i], batched.incumbent[i]) << "incumbent " << i;
  }
}

/// Runs one optimizer both ways against the same deterministic scoring
/// function and requires identical trajectories. The benchmark-backed
/// variant exercises the full production path (batched surrogate
/// prediction + query cache); the synthetic variant isolates the
/// optimizer's own RNG discipline.
void check_optimizer(NasOptimizer& optimizer, int n_evals,
                     std::uint64_t seed) {
  {
    const EvalOracle scalar = synthetic_objective;
    const BatchEvalOracle batched = batch_from_scalar(scalar);
    Rng rng_a(seed), rng_b(seed);
    expect_same_trajectory(optimizer.run(scalar, n_evals, rng_a),
                           optimizer.run_batched(batched, n_evals, rng_b));
  }
  {
    const AccelNASBench bench = make_bench();
    const EvalOracle scalar = [&](const Arch& a) {
      return bench.query_accuracy(a);
    };
    const BatchEvalOracle batched = [&](std::span<const Arch> archs) {
      return bench.query_accuracy_batch(archs);
    };
    Rng rng_a(seed), rng_b(seed);
    const SearchTrajectory traj_scalar = optimizer.run(scalar, n_evals, rng_a);
    bench.clear_cache();
    const SearchTrajectory traj_batched =
        optimizer.run_batched(batched, n_evals, rng_b);
    expect_same_trajectory(traj_scalar, traj_batched);
  }
}

TEST(BatchedDeterminismTest, RandomSearch) {
  RandomSearchNas rs;
  check_optimizer(rs, 40, 11);
}

TEST(BatchedDeterminismTest, RegularizedEvolution) {
  RegularizedEvolutionParams p;
  p.population_size = 12;
  p.sample_size = 4;
  RegularizedEvolution re(p);
  check_optimizer(re, 40, 12);
}

TEST(BatchedDeterminismTest, ReinforceViaBaseClassWrap) {
  // REINFORCE has no batched override (each sample depends on the policy
  // updated by the previous score); the base-class batch-of-1 wrap must
  // still reproduce the scalar trajectory exactly.
  Reinforce rf;
  check_optimizer(rf, 30, 13);
}

TEST(BatchedDeterminismTest, Nsga2GenerationalBatching) {
  const AccelNASBench bench = make_bench();
  const BiObjectiveOracle scalar = [&](const Arch& a) {
    return std::make_pair(
        bench.query_accuracy(a),
        bench.query_perf(a, MetricKey{DeviceKind::kA100, PerfMetric::kThroughput}));
  };
  const BiObjectiveBatchOracle batched =
      [&](std::span<const Arch> archs) {
        const std::vector<double> acc = bench.query_accuracy_batch(archs);
        const std::vector<double> thr = bench.query_perf_batch(
            archs, MetricKey{DeviceKind::kA100, PerfMetric::kThroughput});
        std::vector<std::pair<double, double>> out(archs.size());
        for (std::size_t i = 0; i < archs.size(); ++i)
          out[i] = {acc[i], thr[i]};
        return out;
      };

  Nsga2Params p;
  p.population_size = 10;
  const Nsga2 nsga2(p);
  Rng rng_a(14), rng_b(14);
  const Nsga2Result res_scalar = nsga2.run(scalar, 50, rng_a);
  bench.clear_cache();
  const Nsga2Result res_batched = nsga2.run_batched(batched, 50, rng_b);

  ASSERT_EQ(res_scalar.archs.size(), res_batched.archs.size());
  for (std::size_t i = 0; i < res_scalar.archs.size(); ++i) {
    EXPECT_EQ(sp().to_index(res_scalar.archs[i]),
              sp().to_index(res_batched.archs[i]))
        << "arch " << i;
    EXPECT_EQ(res_scalar.obj1[i], res_batched.obj1[i]) << "obj1 " << i;
    EXPECT_EQ(res_scalar.obj2[i], res_batched.obj2[i]) << "obj2 " << i;
  }
  EXPECT_EQ(res_scalar.front, res_batched.front);
}

TEST(BatchedDeterminismTest, SuccessiveHalvingRoundBatching) {
  // Deterministic budget-aware oracle: accuracy approaches the synthetic
  // objective as epochs grow, cost is linear in epochs.
  const BudgetedOracle scalar = [](const Arch& a, int epochs) {
    BudgetedEval e;
    const double maturity =
        static_cast<double>(epochs) / (10.0 + static_cast<double>(epochs));
    e.accuracy = synthetic_objective(a) * maturity;
    e.cost_hours = 0.01 * epochs;
    return e;
  };
  const BudgetedBatchOracle batched =
      [&scalar](std::span<const Arch> archs, int epochs) {
        std::vector<BudgetedEval> out;
        out.reserve(archs.size());
        for (const auto& a : archs) out.push_back(scalar(a, epochs));
        return out;
      };

  SuccessiveHalvingParams p;
  p.initial_population = 9;
  const SuccessiveHalving sh(p);
  Rng rng_a(15), rng_b(15);
  const SuccessiveHalvingResult res_scalar = sh.run(scalar, rng_a);
  const SuccessiveHalvingResult res_batched = sh.run_batched(batched, rng_b);

  EXPECT_EQ(sp().to_index(res_scalar.best),
            sp().to_index(res_batched.best));
  EXPECT_EQ(res_scalar.best_accuracy, res_batched.best_accuracy);
  EXPECT_EQ(res_scalar.total_cost_hours, res_batched.total_cost_hours);
  EXPECT_EQ(res_scalar.rounds, res_batched.rounds);
  ASSERT_EQ(res_scalar.evals.size(), res_batched.evals.size());
  for (std::size_t i = 0; i < res_scalar.evals.size(); ++i) {
    EXPECT_EQ(sp().to_index(res_scalar.evals[i].arch),
              sp().to_index(res_batched.evals[i].arch));
    EXPECT_EQ(res_scalar.evals[i].accuracy, res_batched.evals[i].accuracy);
    EXPECT_EQ(res_scalar.evals[i].epochs, res_batched.evals[i].epochs);
  }
}

TEST(BatchedDeterminismTest, BatchFromScalarAdapter) {
  const BatchEvalOracle adapted = batch_from_scalar(synthetic_objective);
  Rng rng(16);
  std::vector<Arch> archs;
  for (int i = 0; i < 7; ++i) archs.push_back(sp().sample(rng));
  const std::vector<double> got = adapted(archs);
  ASSERT_EQ(got.size(), archs.size());
  for (std::size_t i = 0; i < archs.size(); ++i)
    EXPECT_EQ(got[i], synthetic_objective(archs[i]));
}

}  // namespace
}  // namespace anb
