#include "anb/nas/successive_halving.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "anb/util/error.hpp"

namespace anb {
namespace {

/// Synthetic budgeted oracle: true quality + noise that shrinks with epochs;
/// cost proportional to epochs.
BudgetedOracle synthetic_oracle() {
  return [](const Arch& genotype, int epochs) {
    const Architecture arch = MnasSpace::to_blocks(genotype);
    double quality = 0.0;
    for (const auto& blk : arch.blocks)
      quality += blk.expansion * 0.1 + blk.layers * 0.05 + (blk.se ? 0.1 : 0);
    Rng noise(hash_combine(arch.hash(), static_cast<std::uint64_t>(epochs)));
    BudgetedEval eval;
    eval.accuracy = quality + noise.normal() * (0.5 / std::sqrt(epochs));
    eval.cost_hours = epochs * 0.01;
    return eval;
  };
}

TEST(SuccessiveHalvingTest, HalvesPopulationEachRound) {
  SuccessiveHalvingParams params;
  params.initial_population = 27;
  params.eta = 3;
  params.min_epochs = 5;
  params.max_epochs = 45;
  SuccessiveHalving sh(params);
  Rng rng(1);
  const auto result = sh.run(synthetic_oracle(), rng);
  // 27 @5, 9 @15, 3 @45 -> 3 rounds, 39 evaluations.
  EXPECT_EQ(result.rounds, 3);
  EXPECT_EQ(result.evals.size(), 39u);
  // Cost: 27*0.05 + 9*0.15 + 3*0.45 = 4.05 hours.
  EXPECT_NEAR(result.total_cost_hours, 4.05, 1e-9);
  // Budget schedule recorded correctly.
  EXPECT_EQ(result.evals.front().epochs, 5);
  EXPECT_EQ(result.evals.back().epochs, 45);
}

TEST(SuccessiveHalvingTest, FindsBetterThanMedianRandom) {
  SuccessiveHalving sh;
  Rng rng(2);
  const auto result = sh.run(synthetic_oracle(), rng);
  // Winner should be near the top of the synthetic quality scale (~9.45 max
  // of 7 * (0.6 + 0.15 + 0.1) = 5.95 ... compute: e6*0.1=0.6, L3*0.05=0.15,
  // se 0.1 -> 0.85 per block, 5.95 total). Random mean ~ 4.13.
  EXPECT_GT(result.best_accuracy, 4.6);
}

TEST(SuccessiveHalvingTest, SpendsMoreOnSurvivors) {
  SuccessiveHalving sh;
  Rng rng(3);
  const auto result = sh.run(synthetic_oracle(), rng);
  // The final-round evaluations all use the max budget.
  int max_epoch_evals = 0;
  for (const auto& eval : result.evals) max_epoch_evals += eval.epochs == 45;
  EXPECT_GT(max_epoch_evals, 0);
  EXPECT_LT(max_epoch_evals, 10);
}

TEST(SuccessiveHalvingTest, Validation) {
  SuccessiveHalvingParams params;
  params.initial_population = 1;
  EXPECT_THROW(SuccessiveHalving{params}, Error);
  params.initial_population = 9;
  params.eta = 1;
  EXPECT_THROW(SuccessiveHalving{params}, Error);
  params.eta = 3;
  params.min_epochs = 50;
  params.max_epochs = 10;
  EXPECT_THROW(SuccessiveHalving{params}, Error);
  SuccessiveHalving ok;
  Rng rng(4);
  EXPECT_THROW(ok.run(nullptr, rng), Error);
}

}  // namespace
}  // namespace anb
