#include "anb/nas/nsga2.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "anb/util/error.hpp"
#include "anb/util/pareto.hpp"

namespace anb {
namespace {

/// Synthetic conflicting objectives: "accuracy" rewards capacity,
/// "speed" rewards its absence — a clean trade-off with a wide front.
std::pair<double, double> conflicting_objectives(const Arch& genotype) {
  const Architecture arch = MnasSpace::to_blocks(genotype);
  double capacity = 0.0;
  for (const auto& blk : arch.blocks) {
    capacity += blk.expansion + 2.0 * blk.layers + (blk.se ? 1.5 : 0.0) +
                (blk.kernel == 5 ? 0.7 : 0.0);
  }
  return {capacity, 120.0 - capacity + 0.3 * arch.blocks[0].layers};
}

TEST(Nsga2Test, RanksMatchDominationDefinition) {
  const std::vector<double> o1{1.0, 2.0, 3.0, 0.5, 2.5};
  const std::vector<double> o2{3.0, 2.0, 1.0, 0.5, 2.5};
  const auto ranks = Nsga2::non_dominated_ranks(o1, o2);
  // Points 0,1,2 and 4 are mutually non-dominated; 4 dominates 1; point 3 is
  // dominated by everything.
  EXPECT_EQ(ranks[0], 0);
  EXPECT_EQ(ranks[2], 0);
  EXPECT_EQ(ranks[4], 0);
  EXPECT_EQ(ranks[1], 1);  // dominated by (2.5, 2.5) only
  EXPECT_GT(ranks[3], 0);
}

TEST(Nsga2Test, CrowdingExtremesInfinite) {
  const std::vector<double> o1{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> o2{4.0, 3.0, 2.0, 1.0};
  const std::vector<std::size_t> front{0, 1, 2, 3};
  const auto crowding = Nsga2::crowding_distance(o1, o2, front);
  EXPECT_TRUE(std::isinf(crowding[0]));
  EXPECT_TRUE(std::isinf(crowding[3]));
  EXPECT_FALSE(std::isinf(crowding[1]));
  EXPECT_GT(crowding[1], 0.0);
}

TEST(Nsga2Test, TinyFrontsAllInfinite) {
  const std::vector<double> o1{1.0, 2.0};
  const std::vector<double> o2{2.0, 1.0};
  const std::vector<std::size_t> front{0, 1};
  for (double d : Nsga2::crowding_distance(o1, o2, front))
    EXPECT_TRUE(std::isinf(d));
}

TEST(Nsga2Test, BudgetRespectedAndFrontNonDominated) {
  Nsga2 optimizer;
  Rng rng(1);
  const Nsga2Result result = optimizer.run(conflicting_objectives, 300, rng);
  EXPECT_EQ(result.archs.size(), 300u);
  ASSERT_FALSE(result.front.empty());
  for (std::size_t i : result.front) {
    for (std::size_t j : result.front) {
      if (i == j) continue;
      const bool dominates = result.obj1[j] >= result.obj1[i] &&
                             result.obj2[j] >= result.obj2[i] &&
                             (result.obj1[j] > result.obj1[i] ||
                              result.obj2[j] > result.obj2[i]);
      EXPECT_FALSE(dominates);
    }
  }
}

TEST(Nsga2Test, BeatsRandomSamplingOnHypervolume) {
  Nsga2 optimizer;
  double nsga_hv = 0.0, random_hv = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Rng rng(seed + 10);
    const Nsga2Result result = optimizer.run(conflicting_objectives, 250, rng);
    auto hv_of = [](const std::vector<double>& o1, const std::vector<double>& o2,
                    const std::vector<std::size_t>& front) {
      std::vector<ParetoPoint> points;
      for (std::size_t idx : front) points.push_back({o1[idx], o2[idx], idx});
      return hypervolume_2d(points, 0.0, 0.0);
    };
    nsga_hv += hv_of(result.obj1, result.obj2, result.front);

    // Random baseline at the same budget.
    Rng rrng(seed + 20);
    std::vector<double> o1, o2;
    for (int i = 0; i < 250; ++i) {
      const auto [a, b] = conflicting_objectives(MnasSpace::instance().sample(rrng));
      o1.push_back(a);
      o2.push_back(b);
    }
    random_hv += hv_of(o1, o2, pareto_front(o1, o2));
  }
  EXPECT_GE(nsga_hv, random_hv);
}

TEST(Nsga2Test, FrontSpansTheTradeoff) {
  Nsga2 optimizer;
  Rng rng(5);
  const Nsga2Result result = optimizer.run(conflicting_objectives, 400, rng);
  double o1_min = 1e18, o1_max = -1e18;
  for (std::size_t idx : result.front) {
    o1_min = std::min(o1_min, result.obj1[idx]);
    o1_max = std::max(o1_max, result.obj1[idx]);
  }
  // Capacity objective ranges ~[24.7, 86.9] over the space; the front should
  // cover a wide slice, not collapse to a point.
  EXPECT_GT(o1_max - o1_min, 25.0);
}

TEST(Nsga2Test, Validation) {
  Nsga2Params params;
  params.population_size = 2;
  EXPECT_THROW(Nsga2{params}, Error);
  params.population_size = 10;
  params.mutation_prob = 2.0;
  EXPECT_THROW(Nsga2{params}, Error);
  Nsga2 ok;
  Rng rng(6);
  EXPECT_THROW(ok.run(conflicting_objectives, 10, rng), Error);  // < pop
  EXPECT_THROW(ok.run(nullptr, 100, rng), Error);
}

}  // namespace
}  // namespace anb
