#include "anb/hpo/optimizers.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "anb/util/error.hpp"

namespace anb {
namespace {

/// Smooth 2-d bowl with minimum at (0.3, 0.7).
double bowl(const Configuration& c) {
  const double dx = c.get("x") - 0.3;
  const double dy = c.get("y") - 0.7;
  return dx * dx + dy * dy;
}

ConfigSpace bowl_space() {
  ConfigSpace space;
  space.add_float("x", 0.0, 1.0);
  space.add_float("y", 0.0, 1.0);
  return space;
}

TEST(GridSearchTest, FindsGridOptimum) {
  GridSearch::Options options;
  options.points_per_range = 11;  // grid includes (0.3, 0.7) exactly
  const HpoResult result = GridSearch::run(bowl_space(), bowl, options);
  EXPECT_NEAR(result.best_value, 0.0, 1e-12);
  EXPECT_NEAR(result.best.get("x"), 0.3, 1e-12);
  EXPECT_EQ(result.history.size(), 121u);
}

TEST(GridSearchTest, FilterSkipsPoints) {
  GridSearch::Options options;
  options.points_per_range = 5;
  options.filter = [](const Configuration& c) { return c.get("x") > 0.4; };
  const HpoResult result = GridSearch::run(bowl_space(), bowl, options);
  for (const auto& trial : result.history) EXPECT_GT(trial.config.get("x"), 0.4);
  EXPECT_EQ(result.history.size(), 15u);  // 3 of 5 x-values pass
}

TEST(GridSearchTest, EarlyStopAbortsScan) {
  GridSearch::Options options;
  options.points_per_range = 11;
  options.early_stop = [](double best) { return best < 0.05; };
  const HpoResult result = GridSearch::run(bowl_space(), bowl, options);
  EXPECT_LT(result.history.size(), 121u);
  EXPECT_LT(result.best_value, 0.05);
}

TEST(GridSearchTest, AllFilteredThrows) {
  GridSearch::Options options;
  options.filter = [](const Configuration&) { return false; };
  EXPECT_THROW(GridSearch::run(bowl_space(), bowl, options), Error);
}

TEST(RandomSearchHpoTest, ImprovesWithBudget) {
  Rng r1(1), r2(2);
  const HpoResult small = RandomSearchHpo::run(bowl_space(), bowl, 5, r1);
  const HpoResult large = RandomSearchHpo::run(bowl_space(), bowl, 400, r2);
  EXPECT_LT(large.best_value, small.best_value);
  EXPECT_EQ(large.history.size(), 400u);
  EXPECT_LT(large.best_value, 0.02);
}

TEST(RandomSearchHpoTest, HistoryTracksBest) {
  Rng rng(3);
  const HpoResult result = RandomSearchHpo::run(bowl_space(), bowl, 50, rng);
  double best = 1e9;
  for (const auto& trial : result.history) best = std::min(best, trial.value);
  EXPECT_DOUBLE_EQ(best, result.best_value);
  EXPECT_DOUBLE_EQ(bowl(result.best), result.best_value);
}

TEST(SmacLiteTest, BeatsRandomOnSameBudget) {
  // Averaged over seeds, model-based search should do at least as well.
  // Ten repetitions: best-value distributions are heavy-tailed enough that
  // smaller samples flip on the luck of individual seeds.
  constexpr std::uint64_t kReps = 10;
  double smac_total = 0.0, random_total = 0.0;
  for (std::uint64_t seed = 0; seed < kReps; ++seed) {
    SmacLite::Options options;
    options.n_trials = 40;
    Rng rs(seed * 2 + 1);
    smac_total += SmacLite::run(bowl_space(), bowl, options, rs).best_value;
    Rng rr(seed * 2 + 2);
    random_total += RandomSearchHpo::run(bowl_space(), bowl, 40, rr).best_value;
  }
  EXPECT_LE(smac_total, random_total * 1.1);
  EXPECT_LT(smac_total / static_cast<double>(kReps), 0.01);
}

TEST(SmacLiteTest, ParallelObjectiveMatchesSerial) {
  // For a pure objective, fanning the initial design out across threads
  // must reproduce the serial trajectory exactly: sampling and recording
  // stay on the calling thread in a fixed order.
  SmacLite::Options serial_opts;
  serial_opts.n_trials = 25;
  SmacLite::Options parallel_opts = serial_opts;
  parallel_opts.parallel_objective = true;
  Rng r1(17), r2(17);
  const HpoResult a = SmacLite::run(bowl_space(), bowl, serial_opts, r1);
  const HpoResult b = SmacLite::run(bowl_space(), bowl, parallel_opts, r2);
  EXPECT_DOUBLE_EQ(a.best_value, b.best_value);
  EXPECT_EQ(a.best.to_string(), b.best.to_string());
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.history[i].value, b.history[i].value);
    EXPECT_EQ(a.history[i].config.to_string(), b.history[i].config.to_string());
  }
}

TEST(SmacLiteTest, RespectsFilter) {
  SmacLite::Options options;
  options.n_trials = 25;
  options.filter = [](const Configuration& c) { return c.get("x") < 0.5; };
  Rng rng(9);
  const HpoResult result = SmacLite::run(bowl_space(), bowl, options, rng);
  for (const auto& trial : result.history)
    EXPECT_LT(trial.config.get("x"), 0.5);
}

TEST(SmacLiteTest, WorksOnCategoricalSpaces) {
  ConfigSpace space;
  space.add_categorical("a", {0.0, 1.0, 2.0, 3.0});
  space.add_categorical("b", {0.0, 1.0, 2.0, 3.0});
  auto objective = [](const Configuration& c) {
    return std::abs(c.get("a") - 2.0) + std::abs(c.get("b") - 1.0);
  };
  SmacLite::Options options;
  options.n_trials = 30;
  Rng rng(10);
  const HpoResult result = SmacLite::run(space, objective, options, rng);
  EXPECT_DOUBLE_EQ(result.best_value, 0.0);
}

TEST(SmacLiteTest, ValidatesArguments) {
  SmacLite::Options options;
  options.n_trials = 0;
  Rng rng(11);
  EXPECT_THROW(SmacLite::run(bowl_space(), bowl, options, rng), Error);
  options.n_trials = 10;
  EXPECT_THROW(SmacLite::run(bowl_space(), nullptr, options, rng), Error);
}

TEST(SmacLiteTest, FilterRejectingEverythingThrows) {
  // sample_valid gives up after 1000 consecutive rejections instead of
  // spinning forever on an unsatisfiable filter.
  SmacLite::Options options;
  options.n_trials = 4;
  options.filter = [](const Configuration&) { return false; };
  Rng rng(12);
  EXPECT_THROW(SmacLite::run(bowl_space(), bowl, options, rng), Error);
}

}  // namespace
}  // namespace anb
