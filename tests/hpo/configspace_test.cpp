#include "anb/hpo/configspace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "anb/util/error.hpp"

namespace anb {
namespace {

ConfigSpace mixed_space() {
  ConfigSpace space;
  space.add_categorical("cat", {1.0, 4.0, 6.0});
  space.add_int("depth", 2, 8);
  space.add_float("frac", 0.1, 0.9);
  space.add_float("lr", 0.001, 1.0, /*log_scale=*/true);
  return space;
}

TEST(ConfigurationTest, GettersAndErrors) {
  Configuration c;
  c.set("a", 2.0);
  EXPECT_DOUBLE_EQ(c.get("a"), 2.0);
  EXPECT_EQ(c.get_int("a"), 2);
  EXPECT_TRUE(c.has("a"));
  EXPECT_FALSE(c.has("b"));
  EXPECT_THROW(c.get("b"), Error);
  c.set("frac", 0.5);
  EXPECT_THROW(c.get_int("frac"), Error);
}

TEST(ConfigSpaceTest, SampleWithinDomains) {
  const ConfigSpace space = mixed_space();
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const Configuration c = space.sample(rng);
    EXPECT_NO_THROW(space.validate(c));
    const double cat = c.get("cat");
    EXPECT_TRUE(cat == 1.0 || cat == 4.0 || cat == 6.0);
    EXPECT_GE(c.get_int("depth"), 2);
    EXPECT_LE(c.get_int("depth"), 8);
    EXPECT_GE(c.get("lr"), 0.001);
    EXPECT_LE(c.get("lr"), 1.0);
  }
}

TEST(ConfigSpaceTest, LogSamplingCoversDecades) {
  ConfigSpace space;
  space.add_float("lr", 1e-4, 1.0, /*log_scale=*/true);
  Rng rng(2);
  int tiny = 0;
  for (int i = 0; i < 2000; ++i) {
    if (space.sample(rng).get("lr") < 1e-2) ++tiny;
  }
  // Log-uniform: P(lr < 1e-2) = 0.5; linear-uniform would give ~0.01.
  EXPECT_GT(tiny, 800);
  EXPECT_LT(tiny, 1200);
}

TEST(ConfigSpaceTest, GridEnumerates) {
  ConfigSpace space;
  space.add_categorical("a", {0.0, 1.0});
  space.add_int("b", 1, 3);
  const auto grid = space.grid(5);
  EXPECT_EQ(grid.size(), 6u);  // 2 * 3
  std::set<std::pair<double, double>> seen;
  for (const auto& c : grid) seen.insert({c.get("a"), c.get("b")});
  EXPECT_EQ(seen.size(), 6u);
}

TEST(ConfigSpaceTest, GridPointsPerRange) {
  ConfigSpace space;
  space.add_float("x", 0.0, 1.0);
  const auto grid = space.grid(5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front().get("x"), 0.0);
  EXPECT_DOUBLE_EQ(grid.back().get("x"), 1.0);
}

TEST(ConfigSpaceTest, GridSizeGuard) {
  ConfigSpace space;
  for (int i = 0; i < 10; ++i)
    space.add_categorical("c" + std::to_string(i),
                          {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0});
  EXPECT_THROW(space.grid(2), Error);  // 8^10 combos
}

TEST(ConfigSpaceTest, UnitVectorEncoding) {
  const ConfigSpace space = mixed_space();
  Configuration c;
  c.set("cat", 6.0);
  c.set("depth", 8);
  c.set("frac", 0.9);
  c.set("lr", 1.0);
  const auto v = space.to_unit_vector(c);
  ASSERT_EQ(v.size(), 4u);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 1.0);

  Configuration lo;
  lo.set("cat", 1.0);
  lo.set("depth", 2);
  lo.set("frac", 0.1);
  lo.set("lr", 0.001);
  for (double x : space.to_unit_vector(lo)) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(ConfigSpaceTest, NeighborChangesOneParam) {
  const ConfigSpace space = mixed_space();
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Configuration c = space.sample(rng);
    const Configuration n = space.neighbor(c, rng);
    EXPECT_NO_THROW(space.validate(n));
    int diffs = 0;
    for (const auto& [key, value] : c.values())
      diffs += n.get(key) != value;
    EXPECT_LE(diffs, 1);
  }
}

TEST(ConfigSpaceTest, ValidateCatchesViolations) {
  const ConfigSpace space = mixed_space();
  Rng rng(4);
  Configuration c = space.sample(rng);
  c.set("depth", 99);
  EXPECT_THROW(space.validate(c), Error);
  c.set("depth", 3);
  c.set("cat", 2.0);  // not a choice
  EXPECT_THROW(space.validate(c), Error);
}

TEST(ConfigSpaceTest, DuplicateParamRejected) {
  ConfigSpace space;
  space.add_int("x", 0, 1);
  EXPECT_THROW(space.add_float("x", 0.0, 1.0), Error);
}

TEST(ConfigSpaceTest, BadDomainsRejected) {
  ConfigSpace space;
  EXPECT_THROW(space.add_categorical("empty", {}), Error);
  EXPECT_THROW(space.add_int("bad", 5, 2), Error);
  EXPECT_THROW(space.add_float("bad2", 1.0, 1.0), Error);
  EXPECT_THROW(space.add_float("bad3", -1.0, 1.0, /*log_scale=*/true), Error);
}

}  // namespace
}  // namespace anb
