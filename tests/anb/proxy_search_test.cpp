#include "anb/anb/proxy_search.hpp"

#include <gtest/gtest.h>

#include <set>

#include "anb/anb/pipeline.hpp"
#include "anb/ir/model_ir.hpp"
#include "anb/searchspace/space.hpp"
#include "anb/util/error.hpp"

namespace anb {
namespace {

/// Small domains so grid tests stay fast.
ProxyDomains small_domains() {
  ProxyDomains d;
  d.batch_size = {512};
  d.total_epochs = {10, 20, 30};
  d.resize_start_epoch = {0};
  d.resize_finish_epoch = {10};
  d.res_start = {160, 192};
  d.res_finish = {192, 224};
  return d;
}

class ProxySearchTest : public ::testing::Test {
 protected:
  TrainingSimulator sim_{42};
  ProxySearch search_{sim_};
};

TEST_F(ProxySearchTest, StratifiedModelsSpreadOverComplexity) {
  Rng rng(1);
  const auto models = search_.stratified_models(20, rng);
  ASSERT_EQ(models.size(), 20u);
  std::set<std::uint64_t> unique;
  std::vector<double> macs;
  for (const auto& m : models) {
    unique.insert(MnasSpace::instance().to_index(m));
    macs.push_back(static_cast<double>(
        build_ir(MnasSpace::to_blocks(m), 224).total_macs()));
  }
  EXPECT_EQ(unique.size(), models.size());
  // Coverage: largest at least 3x the smallest.
  const auto [lo, hi] = std::minmax_element(macs.begin(), macs.end());
  EXPECT_GT(*hi / *lo, 3.0);
  EXPECT_THROW(search_.stratified_models(1, rng), Error);
}

TEST_F(ProxySearchTest, EvaluateSchemeComputesTauAndCost) {
  Rng rng(2);
  const auto models = search_.stratified_models(12, rng);
  std::vector<double> ref;
  for (const auto& m : models)
    ref.push_back(
        sim_.train(MnasSpace::to_blocks(m), reference_scheme(), 0).top1);

  const auto trial = search_.evaluate_scheme(canonical_p_star(), models, ref,
                                             /*t_spec=*/5.0);
  EXPECT_GT(trial.tau, 0.5);
  EXPECT_LE(trial.tau, 1.0);
  EXPECT_GT(trial.cost_hours, 0.0);
  EXPECT_TRUE(trial.feasible);
}

TEST_F(ProxySearchTest, GridSearchFindsFeasibleScheme) {
  ProxySearchConfig config;
  config.n_models = 10;
  config.t_spec_hours = 3.0;
  config.domains = small_domains();
  const auto outcome = search_.run_grid(config);

  EXPECT_LE(outcome.best_cost_hours, config.t_spec_hours);
  EXPECT_GT(outcome.best_tau, 0.6);
  EXPECT_GT(outcome.speedup, 3.0);
  EXPECT_EQ(outcome.trials.size(),
            config.domains.enumerate_valid().size());
  // The best trial really is the max-tau feasible one.
  for (const auto& trial : outcome.trials) {
    if (trial.feasible) {
      EXPECT_LE(trial.tau, outcome.best_tau + 1e-12);
    }
  }
}

TEST_F(ProxySearchTest, EarlyStopShortensGrid) {
  ProxySearchConfig config;
  config.n_models = 8;
  config.t_spec_hours = 3.0;
  config.domains = small_domains();
  config.early_stop_tau = 0.5;  // easily reached
  const auto outcome = search_.run_grid(config);
  EXPECT_LT(outcome.trials.size(), config.domains.enumerate_valid().size());
}

TEST_F(ProxySearchTest, InfeasibleBudgetThrows) {
  ProxySearchConfig config;
  config.n_models = 6;
  config.t_spec_hours = 1e-6;  // nothing fits
  config.domains = small_domains();
  EXPECT_THROW(search_.run_grid(config), Error);
}

TEST_F(ProxySearchTest, MoreEpochsImproveTauWithinGrid) {
  // Within the trials, average tau at e_t=30 should beat e_t=10.
  ProxySearchConfig config;
  config.n_models = 10;
  config.t_spec_hours = 100.0;  // everything feasible
  config.domains = small_domains();
  const auto outcome = search_.run_grid(config);
  double tau10 = 0.0, tau30 = 0.0;
  int n10 = 0, n30 = 0;
  for (const auto& trial : outcome.trials) {
    if (trial.scheme.total_epochs == 10) {
      tau10 += trial.tau;
      ++n10;
    }
    if (trial.scheme.total_epochs == 30) {
      tau30 += trial.tau;
      ++n30;
    }
  }
  ASSERT_GT(n10, 0);
  ASSERT_GT(n30, 0);
  EXPECT_GT(tau30 / n30, tau10 / n10);
}

TEST_F(ProxySearchTest, SchemeConfigSpaceRoundTrip) {
  const ConfigSpace space = ProxySearch::scheme_space(ProxyDomains{});
  EXPECT_EQ(space.num_params(), 6u);
  Rng rng(5);
  int valid = 0;
  for (int i = 0; i < 100; ++i) {
    const Configuration c = space.sample(rng);
    if (!ProxySearch::scheme_config_valid(c)) continue;
    ++valid;
    const TrainingScheme s = ProxySearch::scheme_from_config(c);
    EXPECT_NO_THROW(s.validate());
    EXPECT_EQ(s.batch_size, c.get_int("b"));
  }
  EXPECT_GT(valid, 10);
}

TEST_F(ProxySearchTest, HpoOptimizersFindFeasibleSchemes) {
  ProxySearchConfig config;
  config.n_models = 8;
  config.t_spec_hours = 3.0;
  config.domains = small_domains();
  for (const std::string optimizer : {"random", "smac"}) {
    const auto outcome = search_.run_with(optimizer, config, /*budget=*/15);
    EXPECT_LE(outcome.best_cost_hours, config.t_spec_hours) << optimizer;
    EXPECT_GT(outcome.best_tau, 0.5) << optimizer;
  }
  EXPECT_THROW(search_.run_with("cma-es", config, 5), Error);
}

}  // namespace
}  // namespace anb
