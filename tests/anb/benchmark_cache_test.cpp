// Tests for AccelNASBench's architecture-keyed query cache: exact hit/miss
// accounting for scalar and batched queries, in-batch duplicate semantics,
// and determinism when hammered from parallel_for workers (the latter runs
// under TSan in CI — the cache is the only shared mutable state in the
// query path).

#include "anb/anb/benchmark.hpp"

#include <gtest/gtest.h>

#include "anb/anb/tuning.hpp"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include "anb/util/error.hpp"
#include "anb/util/parallel.hpp"

namespace anb {
namespace {

std::unique_ptr<Surrogate> fitted_model(std::uint64_t seed,
                                        double scale = 1.0) {
  Dataset ds(static_cast<std::size_t>(MnasSpace::instance().feature_dim()));
  Rng rng(seed);
  for (int i = 0; i < 150; ++i) {
    const Arch a = MnasSpace::instance().sample(rng);
    const auto f = MnasSpace::instance().features(a);
    double y = 0.0;
    for (double v : f) y += v;
    ds.add(f, scale * y + rng.normal(0.0, 0.01));
  }
  auto model = make_default_surrogate(SurrogateKind::kXgb);
  model->fit(ds, rng);
  return model;
}

AccelNASBench make_bench() {
  AccelNASBench bench;
  bench.set_accuracy_surrogate(fitted_model(1));
  bench.set_perf_surrogate(MetricKey{DeviceKind::kA100, PerfMetric::kThroughput},
                           fitted_model(2, 100.0));
  return bench;
}

/// `n` architectures with pairwise-distinct cache keys (to_index), so
/// hit/miss counts can be asserted exactly.
std::vector<Arch> distinct_archs(std::size_t n, std::uint64_t seed) {
  std::vector<Arch> archs;
  std::set<std::uint64_t> seen;
  Rng rng(seed);
  while (archs.size() < n) {
    const Arch a = MnasSpace::instance().sample(rng);
    if (seen.insert(MnasSpace::instance().to_index(a)).second) archs.push_back(a);
  }
  return archs;
}

TEST(BenchmarkCacheTest, ScalarHitMissAccounting) {
  const AccelNASBench bench = make_bench();
  const auto archs = distinct_archs(10, 3);

  std::vector<double> first;
  for (const auto& a : archs) first.push_back(bench.query_accuracy(a));
  QueryCacheStats stats = bench.cache_stats();
  EXPECT_EQ(stats.misses, 10u);
  EXPECT_EQ(stats.hits, 0u);

  for (std::size_t i = 0; i < archs.size(); ++i)
    EXPECT_EQ(bench.query_accuracy(archs[i]), first[i]);
  stats = bench.cache_stats();
  EXPECT_EQ(stats.misses, 10u);
  EXPECT_EQ(stats.hits, 10u);

  // Accuracy and perf cache entries are keyed separately: perf queries on
  // the same architectures are fresh misses.
  for (const auto& a : archs)
    bench.query_perf(a, MetricKey{DeviceKind::kA100, PerfMetric::kThroughput});
  stats = bench.cache_stats();
  EXPECT_EQ(stats.misses, 20u);
  EXPECT_EQ(stats.hits, 10u);
}

TEST(BenchmarkCacheTest, BatchedQueryMatchesScalarAndCountsDuplicates) {
  const AccelNASBench bench = make_bench();
  const auto unique = distinct_archs(8, 4);

  // Reference values via the scalar path on a second, cache-less bench.
  AccelNASBench reference = make_bench();
  reference.set_cache_enabled(false);
  std::vector<double> expected;
  for (const auto& a : unique) expected.push_back(reference.query_accuracy(a));

  // Batch = each unique arch twice. Cold cache: one miss per unique arch,
  // the in-batch repeat is served as a hit.
  std::vector<Arch> batch(unique);
  batch.insert(batch.end(), unique.begin(), unique.end());
  const std::vector<double> got = bench.query_accuracy_batch(batch);
  ASSERT_EQ(got.size(), batch.size());
  for (std::size_t i = 0; i < unique.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "row " << i;
    EXPECT_EQ(got[i + unique.size()], expected[i]) << "repeat row " << i;
  }
  const QueryCacheStats stats = bench.cache_stats();
  EXPECT_EQ(stats.misses, unique.size());
  EXPECT_EQ(stats.hits, unique.size());

  // Warm batch: pure hits, and scalar queries agree with the batch.
  const std::vector<double> warm = bench.query_accuracy_batch(batch);
  EXPECT_EQ(warm, got);
  EXPECT_EQ(bench.cache_stats().hits, unique.size() + batch.size());
  for (std::size_t i = 0; i < unique.size(); ++i)
    EXPECT_EQ(bench.query_accuracy(unique[i]), expected[i]);
}

TEST(BenchmarkCacheTest, PerfBatchMatchesScalar) {
  const AccelNASBench bench = make_bench();
  const auto archs = distinct_archs(12, 5);
  const std::vector<double> batch = bench.query_perf_batch(
      archs, MetricKey{DeviceKind::kA100, PerfMetric::kThroughput});
  ASSERT_EQ(batch.size(), archs.size());
  for (std::size_t i = 0; i < archs.size(); ++i)
    EXPECT_EQ(batch[i], bench.query_perf(archs[i], MetricKey{DeviceKind::kA100, PerfMetric::kThroughput}));
  EXPECT_THROW(bench.query_perf_batch(archs, MetricKey{DeviceKind::kRtx3090, PerfMetric::kThroughput}),
               Error);
}

TEST(BenchmarkCacheTest, ParallelHammerIsDeterministic) {
  const AccelNASBench bench = make_bench();
  constexpr std::size_t kUnique = 16;
  constexpr std::size_t kQueries = 512;
  const auto archs = distinct_archs(kUnique, 6);

  AccelNASBench reference = make_bench();
  reference.set_cache_enabled(false);
  std::vector<double> expected;
  for (const auto& a : archs) expected.push_back(reference.query_accuracy(a));

  // Hammer the cache from four workers (forced even on one-core hosts):
  // every worker mixes scalar and batched queries over the same keys, so
  // lookups, inserts, and the miss fan-out race on the shared state. Run
  // under TSan in CI. Results must equal the cache-less reference exactly
  // regardless of interleaving.
  std::vector<double> scalar_got(kQueries);
  std::vector<std::vector<double>> batch_got(kQueries / 64);
  parallel_for(
      kQueries,
      [&](std::size_t q) {
        scalar_got[q] = bench.query_accuracy(archs[q % kUnique]);
        if (q % 64 == 0)
          batch_got[q / 64] = bench.query_accuracy_batch(archs);
      },
      /*num_threads=*/4);

  for (std::size_t q = 0; q < kQueries; ++q)
    EXPECT_EQ(scalar_got[q], expected[q % kUnique]) << "query " << q;
  for (const auto& batch : batch_got) {
    ASSERT_EQ(batch.size(), kUnique);
    for (std::size_t i = 0; i < kUnique; ++i) EXPECT_EQ(batch[i], expected[i]);
  }

  // Exact counts are racy by design (two workers can miss the same key
  // before either publishes), but conservation holds: every query is
  // counted exactly once, at least one miss per unique key, and no more
  // misses than total queries minus the guaranteed warm repeats.
  const QueryCacheStats stats = bench.cache_stats();
  const std::uint64_t total =
      kQueries + (kQueries / 64) * kUnique;
  EXPECT_EQ(stats.hits + stats.misses, total);
  EXPECT_GE(stats.misses, kUnique);
  EXPECT_GT(stats.hits, 0u);
}

TEST(BenchmarkCacheTest, DisableAndClear) {
  const AccelNASBench bench = make_bench();
  const auto archs = distinct_archs(5, 7);

  std::vector<double> cached;
  for (const auto& a : archs) cached.push_back(bench.query_accuracy(a));
  EXPECT_EQ(bench.cache_stats().misses, 5u);

  AccelNASBench uncached = make_bench();
  uncached.set_cache_enabled(false);
  EXPECT_FALSE(uncached.cache_enabled());
  for (std::size_t i = 0; i < archs.size(); ++i)
    EXPECT_EQ(uncached.query_accuracy(archs[i]), cached[i]);
  // Disabled cache neither counts nor stores.
  QueryCacheStats stats = uncached.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);

  // clear_cache drops entries and resets the counters: re-querying misses
  // again and still returns the same values.
  bench.clear_cache();
  stats = bench.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  for (std::size_t i = 0; i < archs.size(); ++i)
    EXPECT_EQ(bench.query_accuracy(archs[i]), cached[i]);
  EXPECT_EQ(bench.cache_stats().misses, 5u);
}

TEST(BenchmarkCacheTest, EmptyBatchAndMissingSurrogate) {
  const AccelNASBench bench = make_bench();
  EXPECT_TRUE(bench.query_accuracy_batch(std::span<const Arch>{}).empty());
  EXPECT_EQ(bench.cache_stats().hits + bench.cache_stats().misses, 0u);

  const AccelNASBench empty;
  const auto archs = distinct_archs(2, 8);
  EXPECT_THROW(empty.query_accuracy_batch(archs), Error);
}

}  // namespace
}  // namespace anb
