// Compatibility coverage for the deprecated (DeviceKind, PerfMetric)
// overloads kept for one release after the MetricKey redesign: each shim
// must behave exactly like its MetricKey counterpart. This file is the one
// sanctioned caller of the deprecated API.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include "anb/anb/benchmark.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "anb/anb/tuning.hpp"
#include "anb/util/error.hpp"

namespace anb {
namespace {

std::unique_ptr<Surrogate> tiny_model(std::uint64_t seed) {
  auto model = make_default_surrogate(SurrogateKind::kLgb);
  Dataset data(static_cast<std::size_t>(SearchSpace::feature_dim()));
  Rng rng(seed);
  for (int i = 0; i < 150; ++i) {
    const Architecture a = SearchSpace::sample(rng);
    data.add(SearchSpace::features(a), rng.uniform());
  }
  Rng fit_rng(seed + 1);
  model->fit(data, fit_rng);
  return model;
}

TEST(MetricKeyTest, RoundTripsThroughDatasetName) {
  const MetricKey key{DeviceKind::kVck190, PerfMetric::kLatency};
  EXPECT_EQ(key.to_string(), "ANB-VCK-Lat");
  EXPECT_EQ(MetricKey::parse("ANB-VCK-Lat"), key);
  EXPECT_EQ(dataset_name(key), key.to_string());
  for (DeviceKind device :
       {DeviceKind::kTpuV2, DeviceKind::kTpuV3, DeviceKind::kA100,
        DeviceKind::kRtx3090, DeviceKind::kZcu102, DeviceKind::kVck190}) {
    for (PerfMetric metric : {PerfMetric::kThroughput, PerfMetric::kLatency,
                              PerfMetric::kEnergy}) {
      const MetricKey k{device, metric};
      EXPECT_EQ(MetricKey::parse(k.to_string()), k);
    }
  }
  EXPECT_THROW(MetricKey::parse("ZCU-Thr"), Error);
  EXPECT_THROW(MetricKey::parse("ANB-Nope-Thr"), Error);
}

TEST(MetricKeyTest, OrderedAndHashable) {
  const MetricKey a{DeviceKind::kTpuV2, PerfMetric::kThroughput};
  const MetricKey b{DeviceKind::kTpuV2, PerfMetric::kLatency};
  const MetricKey c{DeviceKind::kA100, PerfMetric::kThroughput};
  EXPECT_TRUE(a < b || b < a);
  EXPECT_TRUE(a < c || c < a);
  std::unordered_set<MetricKey> set{a, b, c, a};
  EXPECT_EQ(set.size(), 3u);
}

TEST(BenchmarkCompatTest, TwoArgOverloadsMatchMetricKey) {
  AccelNASBench bench;
  // Install through the deprecated setter; read back through both APIs.
  bench.set_perf_surrogate(DeviceKind::kA100, PerfMetric::kThroughput,
                           tiny_model(11));
  const MetricKey key{DeviceKind::kA100, PerfMetric::kThroughput};
  EXPECT_TRUE(bench.has_perf(key));
  EXPECT_TRUE(bench.has_perf(DeviceKind::kA100, PerfMetric::kThroughput));
  EXPECT_FALSE(bench.has_perf(DeviceKind::kRtx3090, PerfMetric::kThroughput));

  Rng rng(3);
  std::vector<Architecture> archs;
  for (int i = 0; i < 8; ++i) archs.push_back(SearchSpace::sample(rng));
  for (const Architecture& a : archs) {
    EXPECT_EQ(bench.query_perf(a, DeviceKind::kA100, PerfMetric::kThroughput),
              bench.query_perf(a, key));
  }
  EXPECT_EQ(bench.query_perf_batch(archs, DeviceKind::kA100,
                                   PerfMetric::kThroughput),
            bench.query_perf_batch(archs, key));
  EXPECT_EQ(dataset_name(DeviceKind::kA100, PerfMetric::kThroughput),
            dataset_name(key));
}

}  // namespace
}  // namespace anb

#pragma GCC diagnostic pop
