#include "anb/anb/benchmark.hpp"

#include <gtest/gtest.h>

#include <set>

#include <cstdio>

#include "anb/anb/pipeline.hpp"
#include "anb/anb/tuning.hpp"
#include "anb/util/error.hpp"
#include "anb/util/fault.hpp"

namespace anb {
namespace {

Dataset tiny_arch_dataset(std::uint64_t seed, double scale = 1.0) {
  Dataset ds(static_cast<std::size_t>(MnasSpace::instance().feature_dim()));
  Rng rng(seed);
  for (int i = 0; i < 150; ++i) {
    const Arch a = MnasSpace::instance().sample(rng);
    const auto f = MnasSpace::instance().features(a);
    double y = 0.0;
    for (double v : f) y += v;
    ds.add(f, scale * y + rng.normal(0.0, 0.01));
  }
  return ds;
}

std::unique_ptr<Surrogate> tiny_model(std::uint64_t seed, double scale = 1.0) {
  auto model = make_default_surrogate(SurrogateKind::kLgb);
  Rng rng(seed);
  Dataset data = tiny_arch_dataset(seed, scale);
  model->fit(data, rng);
  return model;
}

TEST(BenchmarkNamingTest, MetricAndDatasetNames) {
  EXPECT_STREQ(perf_metric_name(PerfMetric::kThroughput), "Thr");
  EXPECT_STREQ(perf_metric_name(PerfMetric::kLatency), "Lat");
  EXPECT_EQ(perf_metric_from_name("Thr"), PerfMetric::kThroughput);
  EXPECT_THROW(perf_metric_from_name("Watts"), Error);
  EXPECT_EQ(dataset_name(MetricKey{DeviceKind::kZcu102, PerfMetric::kThroughput}),
            "ANB-ZCU-Thr");
  EXPECT_EQ(dataset_name(MetricKey{DeviceKind::kTpuV3, PerfMetric::kThroughput}),
            "ANB-TPUv3-Thr");
  EXPECT_EQ(dataset_name(MetricKey{DeviceKind::kVck190, PerfMetric::kLatency}),
            "ANB-VCK-Lat");
}

TEST(AccelNASBenchTest, QueriesRouteToSurrogates) {
  AccelNASBench bench;
  EXPECT_FALSE(bench.has_accuracy());
  bench.set_accuracy_surrogate(tiny_model(1));
  bench.set_perf_surrogate(MetricKey{DeviceKind::kA100, PerfMetric::kThroughput},
                           tiny_model(2, 100.0));
  EXPECT_TRUE(bench.has_accuracy());
  EXPECT_TRUE(bench.has_perf(MetricKey{DeviceKind::kA100, PerfMetric::kThroughput}));
  EXPECT_FALSE(bench.has_perf(MetricKey{DeviceKind::kRtx3090, PerfMetric::kThroughput}));

  Rng rng(3);
  const Arch a = MnasSpace::instance().sample(rng);
  const double acc = bench.query_accuracy(a);
  const double thr = bench.query_perf(a, MetricKey{DeviceKind::kA100, PerfMetric::kThroughput});
  EXPECT_TRUE(std::isfinite(acc));
  EXPECT_GT(thr, acc);  // scaled targets
}

TEST(AccelNASBenchTest, MissingSurrogateThrows) {
  AccelNASBench bench;
  Rng rng(4);
  const Arch a = MnasSpace::instance().sample(rng);
  EXPECT_THROW(bench.query_accuracy(a), Error);
  EXPECT_THROW(bench.query_perf(a, MetricKey{DeviceKind::kA100, PerfMetric::kThroughput}),
               Error);
  EXPECT_THROW(bench.set_accuracy_surrogate(nullptr), Error);
}

TEST(AccelNASBenchTest, LatencyOnlyOnFpgas) {
  AccelNASBench bench;
  EXPECT_THROW(bench.set_perf_surrogate(MetricKey{DeviceKind::kA100, PerfMetric::kLatency},
                                        tiny_model(5)),
               Error);
  EXPECT_NO_THROW(bench.set_perf_surrogate(MetricKey{DeviceKind::kZcu102, PerfMetric::kLatency},
                                           tiny_model(6)));
}

TEST(AccelNASBenchTest, PerfTargetsEnumerates) {
  AccelNASBench bench;
  bench.set_perf_surrogate(MetricKey{DeviceKind::kZcu102, PerfMetric::kLatency},
                           tiny_model(7));
  bench.set_perf_surrogate(MetricKey{DeviceKind::kTpuV2, PerfMetric::kThroughput},
                           tiny_model(8));
  const auto targets = bench.perf_targets();
  EXPECT_EQ(targets.size(), 2u);
}

TEST(AccelNASBenchTest, SaveLoadRoundTrip) {
  AccelNASBench bench;
  bench.set_accuracy_surrogate(tiny_model(9));
  bench.set_perf_surrogate(MetricKey{DeviceKind::kVck190, PerfMetric::kThroughput},
                           tiny_model(10, 1000.0));
  bench.set_perf_surrogate(MetricKey{DeviceKind::kVck190, PerfMetric::kLatency},
                           tiny_model(11, 3.0));

  const std::string path = ::testing::TempDir() + "/anb_bench_test.json";
  bench.save(path);
  const AccelNASBench loaded = AccelNASBench::load(path);
  std::remove(path.c_str());

  Rng rng(12);
  for (int i = 0; i < 20; ++i) {
    const Arch a = MnasSpace::instance().sample(rng);
    EXPECT_DOUBLE_EQ(loaded.query_accuracy(a), bench.query_accuracy(a));
    EXPECT_DOUBLE_EQ(
        loaded.query_perf(a, MetricKey{DeviceKind::kVck190, PerfMetric::kThroughput}),
        bench.query_perf(a, MetricKey{DeviceKind::kVck190, PerfMetric::kThroughput}));
    EXPECT_DOUBLE_EQ(
        loaded.query_perf(a, MetricKey{DeviceKind::kVck190, PerfMetric::kLatency}),
        bench.query_perf(a, MetricKey{DeviceKind::kVck190, PerfMetric::kLatency}));
  }
}

TEST(AccelNASBenchTest, NoisyQueriesNeedEnsemble) {
  AccelNASBench plain;
  plain.set_accuracy_surrogate(tiny_model(20));
  Rng rng(21);
  const Arch a = MnasSpace::instance().sample(rng);
  EXPECT_FALSE(plain.has_noisy_accuracy());
  EXPECT_THROW(plain.query_accuracy_noisy(a, rng), Error);
  EXPECT_THROW(plain.query_accuracy_dist(a), Error);
}

TEST(AccelNASBenchTest, EnsemblePipelineEnablesNoisyQueries) {
  PipelineOptions options;
  options.n_archs = 300;
  options.collect_perf = false;
  options.ensemble_accuracy = true;
  options.ensemble_size = 3;
  const PipelineResult result = construct_benchmark(options);
  EXPECT_TRUE(result.bench.has_noisy_accuracy());
  Rng rng(22);
  const Arch a = MnasSpace::instance().sample(rng);
  const auto [mean, std] = result.bench.query_accuracy_dist(a);
  EXPECT_DOUBLE_EQ(mean, result.bench.query_accuracy(a));
  EXPECT_GE(std, 0.0);
  // Draws vary (with overwhelming probability) and stay near the mean.
  const double d1 = result.bench.query_accuracy_noisy(a, rng);
  const double d2 = result.bench.query_accuracy_noisy(a, rng);
  EXPECT_NEAR(d1, mean, 6.0 * std + 1e-9);
  if (std > 1e-9) {
    EXPECT_NE(d1, d2);
  }
  // Noisy mode survives save/load (ensemble serializes).
  const std::string path = ::testing::TempDir() + "/anb_noisy.json";
  result.bench.save(path);
  const AccelNASBench loaded = AccelNASBench::load(path);
  std::remove(path.c_str());
  EXPECT_TRUE(loaded.has_noisy_accuracy());
}

TEST(AccelNASBenchTest, FromJsonRejectsBadFormat) {
  Json j = Json::object();
  j["format"] = "not-a-benchmark";
  j["perf"] = Json::object();
  EXPECT_THROW(AccelNASBench::from_json(j), Error);
}

TEST(BenchmarkNamingTest, ParsersRejectNearMissNames) {
  // Exact-match contract: no case folding, no trimming, no prefixes.
  EXPECT_THROW(perf_metric_from_name(""), Error);
  EXPECT_THROW(perf_metric_from_name("thr"), Error);
  EXPECT_THROW(perf_metric_from_name("Thr "), Error);
  EXPECT_THROW(perf_metric_from_name(" Thr"), Error);
  EXPECT_THROW(perf_metric_from_name("Throughput"), Error);
  EXPECT_THROW(perf_metric_from_name("Enr2"), Error);
  EXPECT_EQ(perf_metric_from_name(perf_metric_name(PerfMetric::kEnergy)),
            PerfMetric::kEnergy);

  EXPECT_THROW(device_kind_from_name(""), Error);
  EXPECT_THROW(device_kind_from_name("A100"), Error);  // canonical is "a100"
  EXPECT_THROW(device_kind_from_name("a100 "), Error);
  EXPECT_THROW(device_kind_from_name("tpuv4"), Error);
  // Round trip through the canonical names still works for all devices.
  for (const auto& device : device_catalog())
    EXPECT_EQ(device_kind_from_name(device_kind_name(device.kind())),
              device.kind());
}

TEST(AccelNASBenchTest, InjectedShortWriteThrowsAndNeverLoads) {
  AccelNASBench bench;
  bench.set_accuracy_surrogate(tiny_model(30));
  const std::string path = ::testing::TempDir() + "/anb_short_write.json";

  {
    fault::ScopedFault guard(kBenchmarkSaveFaultSite,
                             fault::Policy::one_shot());
    EXPECT_THROW(bench.save(path), Error);
  }
  // The truncated artifact on disk must never parse as a valid benchmark.
  EXPECT_THROW(AccelNASBench::load(path), Error);
  // A later fault-free save repairs the file in place.
  bench.save(path);
  EXPECT_TRUE(AccelNASBench::load(path).has_accuracy());
  std::remove(path.c_str());
}

TEST(AccelNASBenchTest, InjectedShortReadThrowsWithoutCorruptingFile) {
  AccelNASBench bench;
  bench.set_accuracy_surrogate(tiny_model(31));
  const std::string path = ::testing::TempDir() + "/anb_short_read.json";
  bench.save(path);

  {
    fault::ScopedFault guard(kBenchmarkLoadFaultSite, fault::Policy::always());
    EXPECT_THROW(AccelNASBench::load(path), Error);
  }
  // The fault was in the (simulated) read, not the file: a clean load works.
  EXPECT_TRUE(AccelNASBench::load(path).has_accuracy());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace anb
