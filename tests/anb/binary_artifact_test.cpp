// The tri-modal differential contract of the .anbb binary artifact: a
// benchmark loaded from the text format, from a binary read, and from an
// mmap of the binary file must produce *bit-identical* predictions for
// every surrogate family and every MetricKey, on the scalar and the
// batched query paths. Plus the format-level rejection guarantees
// (version/checksum mismatch) and save→load→save byte-stability.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "anb/anb/benchmark.hpp"
#include "anb/searchspace/space.hpp"
#include "anb/surrogate/ensemble.hpp"
#include "anb/surrogate/gbdt.hpp"
#include "anb/surrogate/hist_gbdt.hpp"
#include "anb/surrogate/random_forest.hpp"
#include "anb/surrogate/svr.hpp"
#include "anb/util/binary.hpp"
#include "anb/util/error.hpp"
#include "anb/util/fault.hpp"
#include "anb/util/io.hpp"

namespace anb {
namespace {

std::string scratch(const std::string& name) {
  return ::testing::TempDir() + name;
}

Dataset make_dataset(int n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset ds(static_cast<std::size_t>(MnasSpace::instance().feature_dim()));
  for (int i = 0; i < n; ++i) {
    const Arch arch = MnasSpace::instance().sample(rng);
    const std::vector<double> x = MnasSpace::instance().features(arch);
    double y = 0.0;
    for (std::size_t k = 0; k < x.size(); ++k)
      y += x[k] * (k % 3 == 0 ? 0.5 : -0.25);
    ds.add(x, y + rng.uniform() * 0.01);
  }
  return ds;
}

/// A benchmark exercising every surrogate family: ensemble accuracy
/// (so noisy/dist queries work) + one perf surrogate per family.
AccelNASBench make_full_benchmark() {
  const Dataset train = make_dataset(120, 21);
  const auto fitted = [&](std::unique_ptr<Surrogate> model) {
    Rng fit_rng(22);
    model->fit(train, fit_rng);
    return model;
  };
  GbdtParams gp;
  gp.n_estimators = 6;
  HistGbdtParams hp;
  hp.n_estimators = 6;
  RandomForestParams fp;
  fp.n_trees = 6;
  SvrParams ep;
  ep.kind = SvrKind::kEpsilon;
  ep.gamma = 0.25;
  SvrParams np;
  np.kind = SvrKind::kNu;
  np.nu = 0.4;
  np.gamma = 0.25;

  AccelNASBench bench;
  bench.set_accuracy_surrogate(fitted(std::make_unique<EnsembleSurrogate>(
      [gp] { return std::make_unique<Gbdt>(gp); }, /*size=*/3)));
  bench.set_perf_surrogate(
      MetricKey{DeviceKind::kA100, PerfMetric::kThroughput},
      fitted(std::make_unique<Gbdt>(gp)));
  bench.set_perf_surrogate(
      MetricKey{DeviceKind::kZcu102, PerfMetric::kThroughput},
      fitted(std::make_unique<HistGbdt>(hp)));
  bench.set_perf_surrogate(
      MetricKey{DeviceKind::kZcu102, PerfMetric::kLatency},
      fitted(std::make_unique<RandomForest>(fp)));
  bench.set_perf_surrogate(
      MetricKey{DeviceKind::kVck190, PerfMetric::kThroughput},
      fitted(std::make_unique<Svr>(ep)));
  bench.set_perf_surrogate(
      MetricKey{DeviceKind::kVck190, PerfMetric::kLatency},
      fitted(std::make_unique<Svr>(np)));
  return bench;
}

std::vector<Arch> make_probes(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Arch> archs;
  archs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) archs.push_back(MnasSpace::instance().sample(rng));
  return archs;
}

/// Bit-identity across two loaded benchmarks on every query path. Uses
/// EXPECT_EQ on doubles deliberately: the contract is exact bits, not
/// tolerance.
void expect_identical(const AccelNASBench& a, const AccelNASBench& b,
                      const std::string& what) {
  const std::vector<Arch> probes = make_probes(40, 23);
  ASSERT_EQ(a.perf_targets(), b.perf_targets()) << what;
  for (const Arch& arch : probes) {
    EXPECT_EQ(a.query_accuracy(arch), b.query_accuracy(arch)) << what;
    const auto [mean_a, std_a] = a.query_accuracy_dist(arch);
    const auto [mean_b, std_b] = b.query_accuracy_dist(arch);
    EXPECT_EQ(mean_a, mean_b) << what;
    EXPECT_EQ(std_a, std_b) << what;
    for (const MetricKey key : a.perf_targets())
      EXPECT_EQ(a.query_perf(arch, key), b.query_perf(arch, key))
          << what << " " << dataset_name(key);
  }
  EXPECT_EQ(a.query_accuracy_batch(probes), b.query_accuracy_batch(probes))
      << what;
  for (const MetricKey key : a.perf_targets())
    EXPECT_EQ(a.query_perf_batch(probes, key),
              b.query_perf_batch(probes, key))
        << what << " batch " << dataset_name(key);
  // Noisy queries draw from the same distribution state: identical seeds
  // must give identical draws.
  Rng noise_a(31), noise_b(31);
  for (const Arch& arch : probes)
    EXPECT_EQ(a.query_accuracy_noisy(arch, noise_a),
              b.query_accuracy_noisy(arch, noise_b))
        << what;
}

class BinaryArtifactTest : public ::testing::Test {
 protected:
  void SetUp() override {
    text_path_ = scratch("binary_artifact.json");
    anbb_path_ = scratch("binary_artifact.anbb");
    const AccelNASBench bench = make_full_benchmark();
    bench.save(text_path_);
    bench.save_binary(anbb_path_);
  }

  std::string text_path_;
  std::string anbb_path_;
};

TEST_F(BinaryArtifactTest, TriModalLoadsAreBitIdentical) {
  const AccelNASBench text = AccelNASBench::load(text_path_);
  const AccelNASBench heap =
      AccelNASBench::load_binary(anbb_path_, io::MapMode::kCopy);
  const AccelNASBench mapped =
      AccelNASBench::load_binary(anbb_path_, io::MapMode::kMap);
  expect_identical(text, heap, "text vs binary(heap)");
  expect_identical(text, mapped, "text vs binary(mmap)");
  expect_identical(heap, mapped, "binary(heap) vs binary(mmap)");
}

TEST_F(BinaryArtifactTest, OpenSniffsBothFormats) {
  const AccelNASBench from_text = AccelNASBench::open(text_path_);
  const AccelNASBench from_anbb = AccelNASBench::open(anbb_path_);
  expect_identical(from_text, from_anbb, "open(text) vs open(anbb)");
}

TEST_F(BinaryArtifactTest, SaveLoadSaveIsByteStable) {
  const AccelNASBench reloaded = AccelNASBench::load_binary(anbb_path_);
  const std::string again = scratch("binary_artifact_again.anbb");
  reloaded.save_binary(again);
  const auto first = io::Buffer::read_file(anbb_path_);
  const auto second = io::Buffer::read_file(again);
  ASSERT_EQ(first->size(), second->size());
  EXPECT_EQ(std::memcmp(first->data(), second->data(), first->size()), 0);
}

TEST_F(BinaryArtifactTest, MappedBenchmarkSurvivesUnlink) {
  const AccelNASBench mapped =
      AccelNASBench::load_binary(anbb_path_, io::MapMode::kMap);
  ASSERT_EQ(std::remove(anbb_path_.c_str()), 0);
  const std::vector<Arch> probes = make_probes(5, 29);
  for (const Arch& arch : probes)
    EXPECT_TRUE(std::isfinite(mapped.query_accuracy(arch)));
}

TEST_F(BinaryArtifactTest, VersionMismatchRejected) {
  auto image = io::Buffer::read_file(anbb_path_);
  std::vector<char> bytes(image->data(), image->data() + image->size());
  std::uint32_t bumped = bin::kFormatVersion + 1;
  std::memcpy(bytes.data() + 12, &bumped, sizeof(bumped));
  // Keep the checksum honest so the *version* check is what rejects.
  std::uint64_t zero = 0;
  std::memcpy(bytes.data() + bin::kChecksumOffset, &zero, sizeof(zero));
  const std::uint64_t sum = bin::checksum64(bytes);
  std::memcpy(bytes.data() + bin::kChecksumOffset, &sum, sizeof(sum));
  const std::string path = scratch("binary_artifact_version.anbb");
  io::write_file(path, bytes);
  try {
    AccelNASBench::load_binary(path);
    ADD_FAILURE() << "future-version artifact loaded";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("version"), std::string::npos) << msg;
    EXPECT_NE(msg.find(path), std::string::npos) << msg;
  }
}

TEST_F(BinaryArtifactTest, ChecksumMismatchRejected) {
  auto image = io::Buffer::read_file(anbb_path_);
  std::vector<char> bytes(image->data(), image->data() + image->size());
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  const std::string path = scratch("binary_artifact_checksum.anbb");
  io::write_file(path, bytes);
  for (const io::MapMode mode : {io::MapMode::kCopy, io::MapMode::kMap}) {
    try {
      AccelNASBench::load_binary(path, mode);
      ADD_FAILURE() << "bit-flipped artifact loaded";
    } catch (const Error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("checksum"), std::string::npos) << msg;
      EXPECT_NE(msg.find(path), std::string::npos) << msg;
    }
  }
}

TEST_F(BinaryArtifactTest, TextLoaderNamesThePathOnFailure) {
  const std::string path = scratch("binary_artifact_bad.json");
  write_text_file(path, "{\"format\": \"not-a-benchmark\"}");
  for (const auto load : {+[](const std::string& p) {
                            return AccelNASBench::load(p);
                          },
                          +[](const std::string& p) {
                            return AccelNASBench::open(p);
                          }}) {
    try {
      load(path);
      ADD_FAILURE() << "bad format tag loaded";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
          << e.what();
    }
  }
}

TEST_F(BinaryArtifactTest, FaultSitesCoverTheBinaryPaths) {
  // The save/load fault sites injected for the text format fire on the
  // binary paths too — a short write leaves a file load_binary rejects,
  // and a short read rejects an intact file.
  const std::string path = scratch("binary_artifact_fault.anbb");
  {
    fault::ScopedFault guard(kBenchmarkSaveFaultSite,
                             fault::Policy::one_shot());
    EXPECT_THROW(make_full_benchmark().save_binary(path), Error);
  }
  // The truncated container on disk must never load as a valid benchmark.
  EXPECT_THROW(AccelNASBench::load_binary(path), Error);

  {
    fault::ScopedFault guard(kBenchmarkLoadFaultSite, fault::Policy::always());
    EXPECT_THROW(AccelNASBench::load_binary(anbb_path_), Error);
    EXPECT_THROW(AccelNASBench::open(anbb_path_), Error);
  }
  // The fault was in the (simulated) read, not the file: clean loads work.
  EXPECT_TRUE(AccelNASBench::load_binary(anbb_path_).has_accuracy());
}

}  // namespace
}  // namespace anb
