#include "anb/anb/pipeline.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "anb/util/error.hpp"

namespace anb {
namespace {

TEST(PipelineTest, CanonicalPStarIsValidAndCheap) {
  const TrainingScheme p = canonical_p_star();
  EXPECT_NO_THROW(p.validate());
  TrainingSimulator sim(42);
  Rng rng(1);
  const Architecture arch =
      MnasSpace::to_blocks(MnasSpace::instance().sample(rng));
  const double proxy_cost = sim.training_cost_hours(arch, p);
  const double ref_cost = sim.training_cost_hours(arch, reference_scheme());
  EXPECT_GT(ref_cost / proxy_cost, 4.0);
  EXPECT_LT(ref_cost / proxy_cost, 12.0);
}

TEST(PipelineTest, EnergyOptionAddsSurrogatesAndMetrics) {
  PipelineOptions options;
  options.n_archs = 250;
  options.collect_energy = true;
  const PipelineResult result = construct_benchmark(options);
  // 1 acc + 6 thr + 2 lat + 6 enr = 15 datasets.
  EXPECT_EQ(result.test_metrics.size(), 15u);
  EXPECT_TRUE(
      result.bench.has_perf(MetricKey{DeviceKind::kA100, PerfMetric::kEnergy}));
  Rng rng(2);
  const Arch arch = MnasSpace::instance().sample(rng);
  EXPECT_GT(result.bench.query_perf(arch, MetricKey{DeviceKind::kZcu102, PerfMetric::kEnergy}),
            0.0);
}

TEST(PipelineTest, DeterministicAcrossRuns) {
  PipelineOptions options;
  options.n_archs = 200;
  options.collect_perf = false;
  const PipelineResult a = construct_benchmark(options);
  const PipelineResult b = construct_benchmark(options);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const Arch arch = MnasSpace::instance().sample(rng);
    EXPECT_DOUBLE_EQ(a.bench.query_accuracy(arch),
                     b.bench.query_accuracy(arch));
  }
  EXPECT_DOUBLE_EQ(a.test_metrics.at("ANB-Acc").kendall_tau,
                   b.test_metrics.at("ANB-Acc").kendall_tau);
}

TEST(PipelineTest, WorldSeedChangesBenchmark) {
  PipelineOptions a_options, b_options;
  a_options.n_archs = b_options.n_archs = 200;
  a_options.collect_perf = b_options.collect_perf = false;
  b_options.world_seed = 43;
  const PipelineResult a = construct_benchmark(a_options);
  const PipelineResult b = construct_benchmark(b_options);
  Rng rng(4);
  int diffs = 0;
  for (int i = 0; i < 10; ++i) {
    const Arch arch = MnasSpace::instance().sample(rng);
    diffs += a.bench.query_accuracy(arch) != b.bench.query_accuracy(arch);
  }
  EXPECT_GT(diffs, 5);
}

TEST(PipelineTest, TunedPipelineRunsEndToEnd) {
  PipelineOptions options;
  options.n_archs = 260;
  options.collect_perf = false;
  options.tune = true;
  options.tuning.n_trials = 4;
  options.tuning.tuning_subsample = 150;
  const PipelineResult result = construct_benchmark(options);
  EXPECT_GT(result.test_metrics.at("ANB-Acc").kendall_tau, 0.5);
}

TEST(PipelineTest, SavedBenchmarkLoadsElsewhere) {
  PipelineOptions options;
  options.n_archs = 200;
  options.collect_perf = false;
  const PipelineResult result = construct_benchmark(options);
  const std::string path = ::testing::TempDir() + "/anb_pipe_bench.json";
  result.bench.save(path);
  const AccelNASBench loaded = AccelNASBench::load(path);
  std::remove(path.c_str());
  EXPECT_TRUE(loaded.has_accuracy());
  // Corrupted payloads are rejected cleanly.
  write_text_file(path, "{\"format\": \"accel-nasbench-v1\", \"perf\": 3}");
  EXPECT_THROW(AccelNASBench::load(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace anb
