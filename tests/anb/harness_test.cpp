#include "anb/anb/harness.hpp"

#include <gtest/gtest.h>

#include "anb/anb/pipeline.hpp"
#include "anb/util/error.hpp"

namespace anb {
namespace {

/// Build one small benchmark shared by the harness tests (cached — the
/// collection + fits take a couple of seconds).
const PipelineResult& small_pipeline() {
  static const PipelineResult result = [] {
    PipelineOptions options;
    options.n_archs = 600;
    options.tune = false;
    return construct_benchmark(options);
  }();
  return result;
}

TEST(HarnessTest, TrajectoriesCompareTrueAndSimulated) {
  const auto& pipe = small_pipeline();
  TrainingSimulator sim(42);
  TrajectoryConfig config;
  config.n_evals = 60;
  config.n_sim_seeds = 2;
  const auto comparisons =
      compare_trajectories(pipe.bench, sim, pipe.p_star, config);
  ASSERT_EQ(comparisons.size(), 3u);
  EXPECT_EQ(comparisons[0].optimizer, "RS");
  EXPECT_EQ(comparisons[1].optimizer, "RE");
  EXPECT_EQ(comparisons[2].optimizer, "REINFORCE");
  for (const auto& cmp : comparisons) {
    EXPECT_EQ(cmp.true_incumbent.size(), 60u);
    EXPECT_EQ(cmp.sim_incumbents.size(), 2u);
    EXPECT_EQ(cmp.sim_mean_incumbent.size(), 60u);
    // Incumbent curves are non-decreasing.
    for (std::size_t i = 1; i < cmp.true_incumbent.size(); ++i) {
      EXPECT_GE(cmp.true_incumbent[i], cmp.true_incumbent[i - 1]);
      EXPECT_GE(cmp.sim_mean_incumbent[i], cmp.sim_mean_incumbent[i - 1]);
    }
    // True and simulated final incumbents should be in the same ballpark
    // (that is the point of the benchmark; Fig. 5).
    EXPECT_NEAR(cmp.true_incumbent.back(), cmp.sim_mean_incumbent.back(),
                0.06);
  }
}

TEST(HarnessTest, ParetoSearchProducesFront) {
  const auto& pipe = small_pipeline();
  ParetoSearchConfig config;
  config.key = {DeviceKind::kVck190, PerfMetric::kThroughput};
  config.n_targets = 3;
  config.n_evals_per_target = 60;
  const ParetoOutcome outcome = pareto_search(pipe.bench, config);

  EXPECT_EQ(outcome.archs.size(), 180u);
  ASSERT_FALSE(outcome.front.empty());
  ASSERT_FALSE(outcome.picks.empty());
  // Front members must be mutually non-dominating.
  for (std::size_t i : outcome.front) {
    for (std::size_t j : outcome.front) {
      if (i == j) continue;
      const bool dominates = outcome.accuracy[i] >= outcome.accuracy[j] &&
                             outcome.perf[i] >= outcome.perf[j] &&
                             (outcome.accuracy[i] > outcome.accuracy[j] ||
                              outcome.perf[i] > outcome.perf[j]);
      EXPECT_FALSE(dominates);
    }
  }
  for (std::size_t pick : outcome.picks) {
    EXPECT_TRUE(std::find(outcome.front.begin(), outcome.front.end(), pick) !=
                outcome.front.end());
  }
}

TEST(HarnessTest, ParetoSearchLatencyDirection) {
  const auto& pipe = small_pipeline();
  ParetoSearchConfig config;
  config.key = {DeviceKind::kZcu102, PerfMetric::kLatency};
  config.n_targets = 2;
  config.n_evals_per_target = 50;
  const ParetoOutcome outcome = pareto_search(pipe.bench, config);
  ASSERT_GE(outcome.front.size(), 1u);
  // Along an acc-ascending front, latency must also ascend (trade-off).
  for (std::size_t k = 1; k < outcome.front.size(); ++k) {
    EXPECT_GE(outcome.accuracy[outcome.front[k]],
              outcome.accuracy[outcome.front[k - 1]] - 1e-12);
    EXPECT_GE(outcome.perf[outcome.front[k]],
              outcome.perf[outcome.front[k - 1]] - 1e-9);
  }
}

TEST(HarnessTest, ParetoSearchRequiresSurrogates) {
  AccelNASBench empty;
  ParetoSearchConfig config;
  EXPECT_THROW(pareto_search(empty, config), Error);
}

TEST(HarnessTest, TrueEvaluationIncludesBaselines) {
  const auto& pipe = small_pipeline();
  TrainingSimulator sim(42);
  ParetoSearchConfig config;
  config.key = {DeviceKind::kVck190, PerfMetric::kThroughput};
  config.n_targets = 2;
  config.n_evals_per_target = 50;
  config.n_picks = 2;
  const ParetoOutcome outcome = pareto_search(pipe.bench, config);
  const auto rows = true_evaluation(outcome, sim, MetricKey{DeviceKind::kVck190, PerfMetric::kThroughput}, "vck190");
  // picks + 4 zoo baselines.
  EXPECT_EQ(rows.size(), outcome.picks.size() + 4u);
  int ours = 0;
  for (const auto& row : rows) {
    EXPECT_GT(row.accuracy, 0.4);
    EXPECT_GT(row.perf, 0.0);
    ours += row.is_ours;
    if (row.is_ours) {
      EXPECT_EQ(row.name.rfind("anb-vck190-", 0), 0u) << row.name;
    }
  }
  EXPECT_EQ(ours, static_cast<int>(outcome.picks.size()));
}

}  // namespace
}  // namespace anb
