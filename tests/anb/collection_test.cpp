#include "anb/anb/collection.hpp"

#include <gtest/gtest.h>

#include <set>

#include "anb/anb/pipeline.hpp"
#include "anb/util/error.hpp"

namespace anb {
namespace {

class CollectionTest : public ::testing::Test {
 protected:
  CollectedData collect(int n, bool perf = true, std::uint64_t seed = 7) {
    TrainingSimulator sim(42);
    DataCollector collector(sim, device_catalog());
    CollectionConfig config;
    config.n_archs = n;
    config.seed = seed;
    config.scheme = canonical_p_star();
    config.collect_perf = perf;
    return collector.collect(config);
  }
};

TEST_F(CollectionTest, CollectsRequestedCount) {
  const CollectedData data = collect(50);
  EXPECT_EQ(data.archs.size(), 50u);
  EXPECT_EQ(data.accuracy.size(), 50u);
  EXPECT_GT(data.total_gpu_hours, 0.0);
}

TEST_F(CollectionTest, ArchitecturesAreUnique) {
  const CollectedData data = collect(200, /*perf=*/false);
  std::set<std::uint64_t> unique;
  for (const auto& a : data.archs) unique.insert(MnasSpace::instance().to_index(a));
  EXPECT_EQ(unique.size(), data.archs.size());
}

TEST_F(CollectionTest, PerfDatasetsCoverAllDeviceMetrics) {
  const CollectedData data = collect(30);
  // 6 throughput datasets + 2 FPGA latency datasets.
  EXPECT_EQ(data.perf.size(), 8u);
  EXPECT_TRUE(data.perf.count("ANB-ZCU-Lat"));
  EXPECT_TRUE(data.perf.count("ANB-VCK-Lat"));
  EXPECT_TRUE(data.perf.count("ANB-A100-Thr"));
  EXPECT_FALSE(data.perf.count("ANB-A100-Lat"));
  for (const auto& [name, labels] : data.perf) {
    EXPECT_EQ(labels.size(), data.archs.size()) << name;
    for (double v : labels) EXPECT_GT(v, 0.0) << name;
  }
}

TEST_F(CollectionTest, SkippingPerfIsSupported) {
  const CollectedData data = collect(20, /*perf=*/false);
  EXPECT_TRUE(data.perf.empty());
  EXPECT_EQ(data.accuracy.size(), 20u);
}

TEST_F(CollectionTest, DeterministicPerSeed) {
  const CollectedData a = collect(25, true, 99);
  const CollectedData b = collect(25, true, 99);
  const CollectedData c = collect(25, true, 100);
  EXPECT_EQ(a.archs.front(), b.archs.front());
  EXPECT_DOUBLE_EQ(a.accuracy.front(), b.accuracy.front());
  EXPECT_DOUBLE_EQ(a.perf.at("ANB-RTX-Thr").front(),
                   b.perf.at("ANB-RTX-Thr").front());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.archs.size(); ++i)
    any_diff |= !(a.archs[i] == c.archs[i]);
  EXPECT_TRUE(any_diff);
}

TEST_F(CollectionTest, AccuraciesPlausible) {
  const CollectedData data = collect(60, /*perf=*/false);
  for (double acc : data.accuracy) {
    EXPECT_GT(acc, 0.3);
    EXPECT_LT(acc, 0.9);
  }
}

TEST_F(CollectionTest, DatasetConstruction) {
  const CollectedData data = collect(40);
  const Dataset acc = data.accuracy_dataset();
  EXPECT_EQ(acc.size(), 40u);
  EXPECT_EQ(acc.num_features(),
            static_cast<std::size_t>(MnasSpace::instance().feature_dim()));
  const Dataset lat = data.perf_dataset(MetricKey{DeviceKind::kZcu102, PerfMetric::kLatency});
  EXPECT_EQ(lat.size(), 40u);
  EXPECT_THROW(data.perf_dataset(MetricKey{DeviceKind::kA100, PerfMetric::kLatency}),
               Error);
}

TEST_F(CollectionTest, CostScalesWithCount) {
  const double h10 = collect(10, false).total_gpu_hours;
  const double h40 = collect(40, false).total_gpu_hours;
  EXPECT_GT(h40, 2.5 * h10);
}

TEST_F(CollectionTest, InvalidConfigThrows) {
  TrainingSimulator sim(42);
  DataCollector collector(sim, device_catalog());
  CollectionConfig config;
  config.n_archs = 0;
  config.scheme = canonical_p_star();
  EXPECT_THROW(collector.collect(config), Error);
  config.n_archs = 5;
  config.scheme.resize_finish_epoch = config.scheme.total_epochs + 1;
  EXPECT_THROW(collector.collect(config), Error);
}

}  // namespace
}  // namespace anb
