#include "anb/anb/tuning.hpp"

#include <gtest/gtest.h>

#include "anb/anb/collection.hpp"
#include "anb/anb/pipeline.hpp"
#include "anb/util/error.hpp"

namespace anb {
namespace {

CollectedData shared_data() {
  TrainingSimulator sim(42);
  DataCollector collector(sim, {});
  CollectionConfig config;
  config.n_archs = 400;
  config.scheme = canonical_p_star();
  config.collect_perf = false;
  return collector.collect(config);
}

TEST(TuningTest, KindNamesAndLabels) {
  EXPECT_STREQ(surrogate_kind_name(SurrogateKind::kXgb), "xgb");
  EXPECT_STREQ(surrogate_kind_label(SurrogateKind::kEpsSvr), "eps-SVR");
  EXPECT_EQ(all_surrogate_kinds().size(), 5u);
}

TEST(TuningTest, ConfigSpacesSampleAndInstantiate) {
  Rng rng(1);
  for (SurrogateKind kind : all_surrogate_kinds()) {
    const ConfigSpace space = surrogate_config_space(kind);
    EXPECT_GE(space.num_params(), 3u);
    for (int i = 0; i < 5; ++i) {
      const Configuration c = space.sample(rng);
      const auto model = make_surrogate(kind, c);
      EXPECT_EQ(model->name(), surrogate_kind_name(kind));
    }
  }
}

TEST(TuningTest, DefaultSurrogatesFitAndPredict) {
  const CollectedData data = shared_data();
  Rng split_rng(2);
  const DatasetSplits splits = data.accuracy_dataset().split(0.8, 0.1,
                                                             split_rng);
  for (SurrogateKind kind : all_surrogate_kinds()) {
    auto model = make_default_surrogate(kind);
    Rng rng(3);
    model->fit(splits.train, rng);
    const FitMetrics m = model->evaluate(splits.test);
    EXPECT_GT(m.kendall_tau, 0.4) << surrogate_kind_label(kind);
    EXPECT_GT(m.r2, 0.2) << surrogate_kind_label(kind);
  }
}

TEST(TuningTest, TunedAtLeastRoughlyMatchesDefault) {
  const CollectedData data = shared_data();
  Rng split_rng(4);
  const DatasetSplits splits = data.accuracy_dataset().split(0.8, 0.1,
                                                             split_rng);
  TuneOptions options;
  options.n_trials = 6;
  options.tuning_subsample = 250;
  const TunedSurrogate tuned =
      tune_surrogate(SurrogateKind::kLgb, splits.train, splits.val, options);
  ASSERT_NE(tuned.model, nullptr);
  EXPECT_GT(tuned.val_metrics.r2, 0.3);
  // The returned config lies in the declared space.
  EXPECT_NO_THROW(
      surrogate_config_space(SurrogateKind::kLgb).validate(tuned.config));
}

TEST(TuningTest, TuneValidatesInputs) {
  Dataset tiny(3);
  tiny.add(std::vector<double>{0, 0, 0}, 0.0);
  TuneOptions options;
  EXPECT_THROW(tune_surrogate(SurrogateKind::kRf, tiny, tiny, options), Error);
}

TEST(TuningTest, UnknownSurrogateKindThrows) {
  // An out-of-range enum value (e.g. from a corrupted config file) must be
  // rejected, not fall through to an arbitrary family.
  const auto bad = static_cast<SurrogateKind>(99);
  EXPECT_THROW(make_default_surrogate(bad), Error);
  EXPECT_THROW(make_surrogate(bad, Configuration{}), Error);
}

}  // namespace
}  // namespace anb
