// MetricKey coverage: the (device, metric) value type is the single
// currency for naming perf targets, so its string round-trip, ordering,
// and hashing contracts each get pinned here.
#include "anb/anb/benchmark.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "anb/util/error.hpp"

namespace anb {
namespace {

TEST(MetricKeyTest, RoundTripsThroughDatasetName) {
  const MetricKey key{DeviceKind::kVck190, PerfMetric::kLatency};
  EXPECT_EQ(key.to_string(), "ANB-VCK-Lat");
  EXPECT_EQ(MetricKey::parse("ANB-VCK-Lat"), key);
  EXPECT_EQ(dataset_name(key), key.to_string());
  for (DeviceKind device :
       {DeviceKind::kTpuV2, DeviceKind::kTpuV3, DeviceKind::kA100,
        DeviceKind::kRtx3090, DeviceKind::kZcu102, DeviceKind::kVck190}) {
    for (PerfMetric metric : {PerfMetric::kThroughput, PerfMetric::kLatency,
                              PerfMetric::kEnergy}) {
      const MetricKey k{device, metric};
      EXPECT_EQ(MetricKey::parse(k.to_string()), k);
    }
  }
  EXPECT_THROW(MetricKey::parse("ZCU-Thr"), Error);
  EXPECT_THROW(MetricKey::parse("ANB-Nope-Thr"), Error);
}

TEST(MetricKeyTest, ExtensionDevicesAndPeakMemoryRoundTrip) {
  const MetricKey npu{DeviceKind::kMobileNpu, PerfMetric::kThroughput};
  EXPECT_EQ(npu.to_string(), "ANB-NPU-Thr");
  EXPECT_EQ(MetricKey::parse("ANB-NPU-Thr"), npu);
  const MetricKey cpu_mem{DeviceKind::kServerCpu, PerfMetric::kPeakMemory};
  EXPECT_EQ(cpu_mem.to_string(), "ANB-CPU-Mem");
  EXPECT_EQ(MetricKey::parse("ANB-CPU-Mem"), cpu_mem);
  EXPECT_EQ(perf_metric_from_name("Mem"), PerfMetric::kPeakMemory);
}

TEST(MetricKeyTest, ParsersAreExactMatch) {
  // The short names are a wire/dataset format: exact match only, so a
  // stale or misspelled dataset id fails loudly instead of aliasing.
  for (const char* bad : {"mem", "MEM", "Memory", "Mem ", "Thrp"}) {
    EXPECT_THROW(perf_metric_from_name(bad), Error) << bad;
  }
  for (const char* bad :
       {"ANB-npu-Thr", "ANB-Npu-Thr", "ANB-CPU2-Mem", "ANB-CPU-mem"}) {
    EXPECT_THROW(MetricKey::parse(bad), Error) << bad;
  }
}

TEST(MetricKeyTest, OrderedAndHashable) {
  const MetricKey a{DeviceKind::kTpuV2, PerfMetric::kThroughput};
  const MetricKey b{DeviceKind::kTpuV2, PerfMetric::kLatency};
  const MetricKey c{DeviceKind::kA100, PerfMetric::kThroughput};
  EXPECT_TRUE(a < b || b < a);
  EXPECT_TRUE(a < c || c < a);
  std::unordered_set<MetricKey> set{a, b, c, a};
  EXPECT_EQ(set.size(), 3u);
}

}  // namespace
}  // namespace anb
