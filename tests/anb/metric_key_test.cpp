// MetricKey coverage: the (device, metric) value type is the single
// currency for naming perf targets, so its string round-trip, ordering,
// and hashing contracts each get pinned here.
#include "anb/anb/benchmark.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "anb/util/error.hpp"

namespace anb {
namespace {

TEST(MetricKeyTest, RoundTripsThroughDatasetName) {
  const MetricKey key{DeviceKind::kVck190, PerfMetric::kLatency};
  EXPECT_EQ(key.to_string(), "ANB-VCK-Lat");
  EXPECT_EQ(MetricKey::parse("ANB-VCK-Lat"), key);
  EXPECT_EQ(dataset_name(key), key.to_string());
  for (DeviceKind device :
       {DeviceKind::kTpuV2, DeviceKind::kTpuV3, DeviceKind::kA100,
        DeviceKind::kRtx3090, DeviceKind::kZcu102, DeviceKind::kVck190}) {
    for (PerfMetric metric : {PerfMetric::kThroughput, PerfMetric::kLatency,
                              PerfMetric::kEnergy}) {
      const MetricKey k{device, metric};
      EXPECT_EQ(MetricKey::parse(k.to_string()), k);
    }
  }
  EXPECT_THROW(MetricKey::parse("ZCU-Thr"), Error);
  EXPECT_THROW(MetricKey::parse("ANB-Nope-Thr"), Error);
}

TEST(MetricKeyTest, OrderedAndHashable) {
  const MetricKey a{DeviceKind::kTpuV2, PerfMetric::kThroughput};
  const MetricKey b{DeviceKind::kTpuV2, PerfMetric::kLatency};
  const MetricKey c{DeviceKind::kA100, PerfMetric::kThroughput};
  EXPECT_TRUE(a < b || b < a);
  EXPECT_TRUE(a < c || c < a);
  std::unordered_set<MetricKey> set{a, b, c, a};
  EXPECT_EQ(set.size(), 3u);
}

}  // namespace
}  // namespace anb
