#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "anb/anb/collection.hpp"
#include "anb/anb/pipeline.hpp"
#include "anb/util/error.hpp"
#include "anb/util/fault.hpp"
#include "anb/util/parallel.hpp"

namespace anb {
namespace {

/// Fault-state and thread-count hygiene: every test leaves the process the
/// way it found it, so the rest of the binary is unaffected.
class CollectionFaultTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::disarm_all();
    set_default_num_threads(0);
  }

  CollectedData collect(int n, const RetryPolicy& retry = RetryPolicy{},
                        std::uint64_t seed = 7) const {
    TrainingSimulator sim(42);
    DataCollector collector(sim, device_catalog());
    CollectionConfig config;
    config.n_archs = n;
    config.seed = seed;
    config.scheme = canonical_p_star();
    config.retry = retry;
    return collector.collect(config);
  }

  /// 6 throughput + 2 FPGA latency datasets at the default config.
  static constexpr std::uint64_t kDatasets = 8;
};

TEST_F(CollectionFaultTest, CleanRunReportIsExactlyTwoReadingsPerSample) {
  const CollectedData data = collect(20);
  EXPECT_TRUE(data.report.clean());
  // The measure-repeat-reject protocol takes exactly two (agreeing)
  // readings per architecture per dataset on a fault-free fleet.
  EXPECT_EQ(data.report.attempts, 2u * 20u * kDatasets);
  EXPECT_EQ(data.report.retries, 0u);
  EXPECT_EQ(data.report.transient_errors, 0u);
  EXPECT_EQ(data.report.timeouts, 0u);
  EXPECT_EQ(data.report.outlier_resolves, 0u);
  EXPECT_EQ(data.report.rejected_outliers, 0u);
  EXPECT_TRUE(data.report.failed_datasets.empty());
  EXPECT_TRUE(data.report.quarantined.empty());
}

TEST_F(CollectionFaultTest, RetryRecoversExactCleanValues) {
  // Acceptance criterion: with a 20% transient-failure rate armed, the
  // collected dataset is bit-identical to the fault-free run for every
  // architecture that survives (here: all of them — with 4 attempts per
  // reading, a 0.2 failure rate virtually never exhausts the budget).
  const CollectedData clean = collect(30);
  ASSERT_TRUE(clean.report.clean());

  fault::ScopedFault guard(kMeasureTransientFaultSite,
                           fault::Policy::bernoulli(0.2, 1001));
  const CollectedData faulty = collect(30);

  EXPECT_GT(faulty.report.transient_errors, 0u);
  EXPECT_EQ(faulty.report.retries, faulty.report.transient_errors);
  EXPECT_EQ(faulty.report.attempts,
            2u * 30u * kDatasets + faulty.report.retries);
  EXPECT_TRUE(faulty.report.quarantined.empty());
  EXPECT_TRUE(faulty.report.failed_datasets.empty());

  ASSERT_EQ(faulty.archs.size(), clean.archs.size());
  for (std::size_t i = 0; i < clean.archs.size(); ++i)
    EXPECT_TRUE(clean.archs[i] == faulty.archs[i]) << i;
  EXPECT_EQ(clean.accuracy, faulty.accuracy);  // bit-identical doubles
  ASSERT_EQ(clean.perf.size(), faulty.perf.size());
  for (const auto& [name, labels] : clean.perf) {
    ASSERT_TRUE(faulty.perf.count(name)) << name;
    EXPECT_EQ(labels, faulty.perf.at(name)) << name;  // bit-identical
  }
}

TEST_F(CollectionFaultTest, TimeoutsAreRetriedAndCountedSeparately) {
  fault::ScopedFault guard(kMeasureTimeoutFaultSite,
                           fault::Policy::bernoulli(0.15, 55));
  const CollectedData data = collect(25);
  EXPECT_GT(data.report.timeouts, 0u);
  EXPECT_EQ(data.report.transient_errors, 0u);
  EXPECT_EQ(data.report.retries, data.report.timeouts);
  EXPECT_TRUE(data.report.quarantined.empty());
}

TEST_F(CollectionFaultTest, ReportIsThreadCountInvariant) {
  // Acceptance criterion: identical accounting (and identical data) under
  // 1, 2, and hardware-default worker threads, with both failure modes and
  // outliers armed at once.
  const auto run = [&](unsigned threads) {
    set_default_num_threads(threads);
    fault::ScopedFault transient(kMeasureTransientFaultSite,
                                 fault::Policy::bernoulli(0.1, 21));
    fault::ScopedFault timeout(kMeasureTimeoutFaultSite,
                               fault::Policy::bernoulli(0.05, 22));
    fault::ScopedFault outlier(kMeasureOutlierFaultSite,
                               fault::Policy::bernoulli(0.05, 23));
    return collect(24);
  };
  const CollectedData base = run(1);
  EXPECT_FALSE(base.report.clean());
  for (const unsigned threads : {2u, 0u}) {
    const CollectedData other = run(threads);
    EXPECT_EQ(base.report.attempts, other.report.attempts);
    EXPECT_EQ(base.report.retries, other.report.retries);
    EXPECT_EQ(base.report.transient_errors, other.report.transient_errors);
    EXPECT_EQ(base.report.timeouts, other.report.timeouts);
    EXPECT_EQ(base.report.outlier_resolves, other.report.outlier_resolves);
    EXPECT_EQ(base.report.rejected_outliers, other.report.rejected_outliers);
    EXPECT_EQ(base.report.failed_datasets, other.report.failed_datasets);
    ASSERT_EQ(base.report.quarantined.size(), other.report.quarantined.size());
    for (std::size_t i = 0; i < base.report.quarantined.size(); ++i)
      EXPECT_TRUE(base.report.quarantined[i] == other.report.quarantined[i]);
    ASSERT_EQ(base.archs.size(), other.archs.size());
    for (const auto& [name, labels] : base.perf)
      EXPECT_EQ(labels, other.perf.at(name)) << name;
  }
}

TEST_F(CollectionFaultTest, OutliersAreResolvedByMedianToCleanValues) {
  const CollectedData clean = collect(25);
  fault::ScopedFault guard(kMeasureOutlierFaultSite,
                           fault::Policy::bernoulli(0.08, 3003));
  const CollectedData faulty = collect(25);

  // Spikes disagree with the repeat reading, forcing median resolves that
  // reject them; the accepted medians equal the clean readings exactly.
  EXPECT_GT(faulty.report.outlier_resolves, 0u);
  EXPECT_GT(faulty.report.rejected_outliers, 0u);
  EXPECT_TRUE(faulty.report.quarantined.empty());
  ASSERT_EQ(faulty.archs.size(), clean.archs.size());
  for (const auto& [name, labels] : clean.perf)
    EXPECT_EQ(labels, faulty.perf.at(name)) << name;
}

TEST_F(CollectionFaultTest, RetryExhaustionQuarantinesTheArchitecture) {
  // A high failure rate makes some sample fail max_read_attempts times in a
  // row; its architecture must be quarantined, dropped from every vector,
  // and reported. max_quarantine_frac=1 keeps every dataset alive so the
  // quarantine path itself is what is exercised.
  RetryPolicy retry;
  retry.max_read_attempts = 2;
  retry.max_quarantine_frac = 1.0;
  const CollectedData clean = collect(30, retry);  // fault-free baseline
  fault::ScopedFault guard(kMeasureTransientFaultSite,
                           fault::Policy::bernoulli(0.45, 909));
  const CollectedData data = collect(30, retry);

  ASSERT_FALSE(data.report.quarantined.empty());
  EXPECT_LT(data.archs.size(), 30u);
  EXPECT_EQ(data.archs.size() + data.report.quarantined.size(), 30u);
  EXPECT_EQ(data.accuracy.size(), data.archs.size());
  for (const auto& [name, labels] : data.perf)
    EXPECT_EQ(labels.size(), data.archs.size()) << name;

  // Quarantined archs are really gone from the survivors.
  std::set<std::uint64_t> kept;
  for (const auto& a : data.archs) kept.insert(MnasSpace::instance().to_index(a));
  for (const auto& a : data.report.quarantined)
    EXPECT_FALSE(kept.count(MnasSpace::instance().to_index(a)));

  // Survivors keep their fault-free values (same seed => same readings).
  std::size_t ci = 0;
  for (std::size_t i = 0; i < 30u; ++i) {
    const auto idx = MnasSpace::instance().to_index(clean.archs[i]);
    if (kept.count(idx) == 0) continue;
    EXPECT_TRUE(clean.archs[i] == data.archs[ci]);
    for (const auto& [name, labels] : data.perf)
      EXPECT_EQ(clean.perf.at(name)[i], labels[ci]) << name;
    ++ci;
  }
  EXPECT_EQ(ci, data.archs.size());
}

TEST_F(CollectionFaultTest, DatasetExceedingQuarantineBudgetIsDropped) {
  // Certain failure on every attempt: every dataset quarantines everything,
  // exceeds max_quarantine_frac, and is dropped as a whole — without
  // poisoning the architecture list (no per-arch quarantine survives).
  fault::ScopedFault guard(kMeasureTransientFaultSite,
                           fault::Policy::always());
  const CollectedData data = collect(10);
  EXPECT_TRUE(data.perf.empty());
  EXPECT_EQ(data.report.failed_datasets.size(), kDatasets);
  EXPECT_TRUE(data.report.quarantined.empty());
  EXPECT_EQ(data.archs.size(), 10u);  // archs + accuracy stay intact
  EXPECT_EQ(data.accuracy.size(), 10u);
}

TEST_F(CollectionFaultTest, InvalidRetryPolicyThrows) {
  RetryPolicy retry;
  retry.max_read_attempts = 0;
  EXPECT_THROW(collect(5, retry), Error);
  retry = RetryPolicy{};
  retry.outlier_reads = 4;  // must be odd
  EXPECT_THROW(collect(5, retry), Error);
  retry = RetryPolicy{};
  retry.outlier_tolerance = 0.0;
  EXPECT_THROW(collect(5, retry), Error);
  retry = RetryPolicy{};
  retry.max_quarantine_frac = 1.5;
  EXPECT_THROW(collect(5, retry), Error);
}

TEST_F(CollectionFaultTest, PipelineSkipsFailedDatasetsGracefully) {
  // End-to-end graceful degradation: with the timeout site always firing,
  // every perf dataset fails collection, yet construct_benchmark still
  // returns a benchmark with the accuracy surrogate fitted and the gaps
  // reported in skipped_datasets.
  fault::ScopedFault guard(kMeasureTimeoutFaultSite, fault::Policy::always());
  PipelineOptions options;
  options.n_archs = 24;
  const PipelineResult result = construct_benchmark(options);

  EXPECT_TRUE(result.bench.has_accuracy());
  EXPECT_TRUE(result.bench.perf_targets().empty());
  EXPECT_EQ(result.skipped_datasets.size(), kDatasets);
  EXPECT_EQ(result.data.report.failed_datasets.size(), kDatasets);
  EXPECT_TRUE(result.test_metrics.count("ANB-Acc"));
  // The skipped list is exactly the failed-dataset list (order may differ).
  std::set<std::string> skipped(result.skipped_datasets.begin(),
                                result.skipped_datasets.end());
  std::set<std::string> failed(result.data.report.failed_datasets.begin(),
                               result.data.report.failed_datasets.end());
  EXPECT_EQ(skipped, failed);
}

TEST_F(CollectionFaultTest, PipelineSurvivesPartialDatasetFailure) {
  // Fail only the throughput readings of one unlucky subset: datasets that
  // stay under the quarantine budget are fitted as usual.
  fault::ScopedFault guard(kMeasureTransientFaultSite,
                           fault::Policy::bernoulli(0.1, 77));
  PipelineOptions options;
  options.n_archs = 24;
  const PipelineResult result = construct_benchmark(options);
  EXPECT_TRUE(result.bench.has_accuracy());
  EXPECT_EQ(result.bench.perf_targets().size(),
            kDatasets - result.skipped_datasets.size());
  EXPECT_FALSE(result.data.report.clean());
}

}  // namespace
}  // namespace anb
