#include "anb/surrogate/ensemble.hpp"

#include <gtest/gtest.h>

#include "anb/surrogate/hist_gbdt.hpp"
#include "anb/util/error.hpp"
#include "anb/util/stats.hpp"

namespace anb {
namespace {

Dataset noisy_dataset(int n, std::uint64_t seed) {
  Dataset ds(3);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform()};
    ds.add(x, 2.0 * x[0] - x[1] + 0.5 * x[2] + 0.05 * rng.normal());
  }
  return ds;
}

EnsembleSurrogate::Factory lgb_factory() {
  return [] {
    HistGbdtParams p;
    p.n_estimators = 80;
    return std::make_unique<HistGbdt>(p);
  };
}

TEST(EnsembleTest, FitsAndPredictsMean) {
  EnsembleSurrogate ensemble(lgb_factory(), 5);
  Rng rng(1);
  const Dataset train = noisy_dataset(500, 2);
  ensemble.fit(train, rng);
  EXPECT_EQ(ensemble.size(), 5u);
  const Dataset test = noisy_dataset(100, 3);
  EXPECT_GT(ensemble.evaluate(test).r2, 0.9);
}

TEST(EnsembleTest, MeanEqualsAverageOfMembers) {
  EnsembleSurrogate ensemble(lgb_factory(), 4);
  Rng rng(4);
  ensemble.fit(noisy_dataset(300, 5), rng);
  const std::vector<double> x{0.3, 0.6, 0.9};
  double sum = 0.0;
  for (std::size_t k = 0; k < ensemble.size(); ++k)
    sum += ensemble.member(k).predict(x);
  EXPECT_NEAR(ensemble.predict(x), sum / 4.0, 1e-12);
}

TEST(EnsembleTest, UncertaintyPositiveOffManifold) {
  EnsembleSurrogate ensemble(lgb_factory(), 6);
  Rng rng(6);
  ensemble.fit(noisy_dataset(300, 7), rng);
  const auto [mean, std] = ensemble.predict_dist(std::vector<double>{0.5, 0.5,
                                                                     0.5});
  EXPECT_TRUE(std::isfinite(mean));
  EXPECT_GE(std, 0.0);
}

TEST(EnsembleTest, SampleMatchesDistribution) {
  EnsembleSurrogate ensemble(lgb_factory(), 6);
  Rng rng(8);
  ensemble.fit(noisy_dataset(300, 9), rng);
  const std::vector<double> x{0.2, 0.8, 0.4};
  const auto [mean, std] = ensemble.predict_dist(x);
  Rng sample_rng(10);
  std::vector<double> draws;
  for (int i = 0; i < 4000; ++i) draws.push_back(ensemble.sample(x, sample_rng));
  EXPECT_NEAR(anb::mean(draws), mean, 4.0 * std / std::sqrt(4000.0) + 1e-9);
  if (std > 1e-9) {
    EXPECT_NEAR(stddev(draws), std, 0.1 * std + 1e-9);
  }
}

TEST(EnsembleTest, SerializationRoundTrip) {
  EnsembleSurrogate ensemble(lgb_factory(), 3);
  Rng rng(11);
  ensemble.fit(noisy_dataset(200, 12), rng);
  const auto restored = surrogate_from_json(ensemble.to_json());
  const std::vector<double> x{0.7, 0.1, 0.5};
  EXPECT_DOUBLE_EQ(restored->predict(x), ensemble.predict(x));
  EXPECT_EQ(restored->name(), "ensemble");
}

TEST(EnsembleTest, Validation) {
  EXPECT_THROW(EnsembleSurrogate(nullptr, 3), Error);
  EXPECT_THROW(EnsembleSurrogate(lgb_factory(), 1), Error);
  EXPECT_THROW(EnsembleSurrogate(lgb_factory(), 4, 0.0), Error);
  EnsembleSurrogate unfitted(lgb_factory(), 3);
  EXPECT_THROW(unfitted.predict(std::vector<double>{1.0, 2.0, 3.0}), Error);
  std::vector<std::unique_ptr<Surrogate>> too_few;
  too_few.push_back(std::make_unique<HistGbdt>());
  EXPECT_THROW(EnsembleSurrogate{std::move(too_few)}, Error);
}

TEST(EnsembleTest, DeserializedWrapperCannotRefit) {
  EnsembleSurrogate ensemble(lgb_factory(), 3);
  Rng rng(13);
  const Dataset train = noisy_dataset(200, 14);
  ensemble.fit(train, rng);
  auto restored = EnsembleSurrogate::from_json(ensemble.to_json());
  EXPECT_THROW(restored->fit(train, rng), Error);
}

}  // namespace
}  // namespace anb
