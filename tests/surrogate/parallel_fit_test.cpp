// Differential tests for the parallel training engine: fitting any tree
// surrogate at 1, 2, and hardware_concurrency threads must produce the SAME
// model — byte-identical serialization and bit-identical predictions. This
// is the determinism contract of DESIGN.md "Parallel training & the binned
// matrix": histogram construction parallelizes across features (each cell
// sums its rows in serial order), forests give every tree its own seeded
// stream, and the element-wise update loops are pure partitions. The same
// suite pins the TrainContext overloads to the plain fit and the
// BinnedMatrix quantization to its documented upper_bound semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "anb/surrogate/binned_matrix.hpp"
#include "anb/surrogate/gbdt.hpp"
#include "anb/surrogate/hist_gbdt.hpp"
#include "anb/surrogate/random_forest.hpp"
#include "anb/surrogate/svr.hpp"
#include "anb/surrogate/train_context.hpp"
#include "anb/util/error.hpp"
#include "anb/util/parallel.hpp"
#include "anb/util/rng.hpp"

namespace anb {
namespace {

constexpr std::size_t kNumFeatures = 9;

/// Restores the global thread-count default on scope exit so a failing
/// assertion cannot leak a pinned value into later tests.
struct ThreadCountGuard {
  ~ThreadCountGuard() { set_default_num_threads(0); }
};

Dataset make_dataset(int n, std::uint64_t seed) {
  Dataset ds(kNumFeatures);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    std::vector<double> x(kNumFeatures);
    for (auto& v : x) v = rng.uniform();
    // Discrete and binary columns exercise the distinct-value binning
    // paths; the interaction terms make trees unbalanced.
    x[6] = static_cast<double>(rng.uniform_index(4));
    x[7] = rng.bernoulli(0.3) ? 1.0 : 0.0;
    const double y = 3.0 * x[0] - 2.0 * x[1] + 4.0 * x[2] * x[3] +
                     0.5 * x[6] - 1.5 * x[7] + 0.1 * rng.normal();
    ds.add(x, y);
  }
  return ds;
}

std::vector<double> make_rows(std::size_t n, std::uint64_t seed) {
  std::vector<double> rows(n * kNumFeatures);
  Rng rng(seed);
  for (auto& v : rows) v = rng.uniform();
  return rows;
}

/// Thread counts every fit must agree across: serial, two workers, and
/// whatever the host machine offers.
std::vector<unsigned> thread_counts() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return {1u, 2u, std::max(4u, hw)};
}

/// Fit `model` with the given pinned thread count; returns the serialized
/// payload and predictions over a fixed query matrix.
template <typename Model>
std::pair<std::string, std::vector<double>> fit_fingerprint(
    Model& model, const Dataset& train, std::uint64_t fit_seed,
    unsigned num_threads) {
  ThreadCountGuard guard;
  set_default_num_threads(num_threads);
  Rng rng(fit_seed);
  model.fit(train, rng);
  const auto rows = make_rows(128, 99);
  std::vector<double> preds(128);
  model.predict_matrix(rows, kNumFeatures, preds);
  return {model.to_json().dump(), std::move(preds)};
}

template <typename Model>
void expect_thread_invariant_fit(Model&& make_model, const Dataset& train,
                                 std::uint64_t fit_seed) {
  std::string ref_json;
  std::vector<double> ref_preds;
  for (const unsigned t : thread_counts()) {
    auto model = make_model();
    auto [json, preds] = fit_fingerprint(model, train, fit_seed, t);
    if (ref_json.empty()) {
      ref_json = std::move(json);
      ref_preds = std::move(preds);
      continue;
    }
    EXPECT_EQ(ref_json, json) << "serialization differs at " << t
                              << " threads";
    ASSERT_EQ(ref_preds.size(), preds.size());
    for (std::size_t i = 0; i < preds.size(); ++i) {
      // EXPECT_EQ on doubles is exact — bit-identity for non-NaN values.
      EXPECT_EQ(ref_preds[i], preds[i]) << "prediction " << i << " at " << t
                                        << " threads";
    }
  }
}

TEST(ParallelFitTest, HistGbdtIsThreadInvariant) {
  const Dataset train = make_dataset(500, 21);
  HistGbdtParams params;
  params.n_estimators = 60;
  params.max_leaves = 15;
  params.max_bins = 32;
  expect_thread_invariant_fit([&] { return HistGbdt(params); }, train, 5);
}

TEST(ParallelFitTest, HistGbdtWithSamplingIsThreadInvariant) {
  // Row bagging and feature sampling draw from the caller's rng on the
  // calling thread; they must not perturb thread invariance.
  const Dataset train = make_dataset(400, 22);
  HistGbdtParams params;
  params.n_estimators = 40;
  params.max_leaves = 8;
  params.subsample = 0.8;
  params.colsample = 0.7;
  expect_thread_invariant_fit([&] { return HistGbdt(params); }, train, 6);
}

TEST(ParallelFitTest, GbdtIsThreadInvariant) {
  const Dataset train = make_dataset(400, 23);
  GbdtParams params;
  params.n_estimators = 60;
  params.max_depth = 3;
  params.subsample = 0.9;
  expect_thread_invariant_fit([&] { return Gbdt(params); }, train, 7);
}

TEST(ParallelFitTest, RandomForestIsThreadInvariant) {
  const Dataset train = make_dataset(400, 24);
  RandomForestParams params;
  params.n_trees = 40;
  params.max_depth = 9;
  expect_thread_invariant_fit([&] { return RandomForest(params); }, train, 8);
}

TEST(ParallelFitTest, ContextFitMatchesPlainFit) {
  // The TrainContext overloads only share precomputed structures; the
  // fitted model must be byte-identical to the plain fit for every family
  // (SVR routes through the base-class fallback).
  const Dataset train = make_dataset(300, 25);
  TrainContext ctx(train);

  HistGbdtParams hist_params;
  hist_params.n_estimators = 30;
  {
    HistGbdt plain(hist_params), shared(hist_params);
    Rng r1(31), r2(31);
    plain.fit(train, r1);
    shared.fit(train, ctx, r2);
    EXPECT_EQ(plain.to_json().dump(), shared.to_json().dump());
  }
  {
    GbdtParams params;
    params.n_estimators = 30;
    Gbdt plain(params), shared(params);
    Rng r1(32), r2(32);
    plain.fit(train, r1);
    shared.fit(train, ctx, r2);
    EXPECT_EQ(plain.to_json().dump(), shared.to_json().dump());
  }
  {
    RandomForestParams params;
    params.n_trees = 20;
    RandomForest plain(params), shared(params);
    Rng r1(33), r2(33);
    plain.fit(train, r1);
    shared.fit(train, ctx, r2);
    EXPECT_EQ(plain.to_json().dump(), shared.to_json().dump());
  }
  {
    SvrParams params;
    params.kind = SvrKind::kEpsilon;
    Svr plain(params), shared(params);
    Rng r1(34), r2(34);
    plain.fit(train, r1);
    shared.fit(train, ctx, r2);
    EXPECT_EQ(plain.to_json().dump(), shared.to_json().dump());
  }
}

TEST(ParallelFitTest, ContextForWrongDatasetThrows) {
  const Dataset train = make_dataset(100, 26);
  const Dataset other = make_dataset(100, 27);
  TrainContext ctx(other);
  HistGbdt model;
  Rng rng(1);
  EXPECT_THROW(model.fit(train, ctx, rng), Error);
}

TEST(BinnedMatrixTest, CodesMatchUpperBoundOfEdges) {
  const Dataset data = make_dataset(300, 41);
  const BinnedMatrix binned(data, 16);
  ASSERT_EQ(binned.num_rows(), data.size());
  ASSERT_EQ(binned.num_features(), data.num_features());
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    const auto edges = binned.edges(f);
    EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
    EXPECT_LE(binned.num_bins(f), binned.max_bins());
    for (std::size_t i = 0; i < data.size(); ++i) {
      const double x = data.feature(i, f);
      const auto expected = static_cast<std::uint8_t>(
          std::upper_bound(edges.begin(), edges.end(), x) - edges.begin());
      ASSERT_EQ(binned.code(i, f), expected)
          << "row " << i << " feature " << f;
    }
  }
}

TEST(BinnedMatrixTest, BinaryFeatureIsLossless) {
  // A two-valued column gets one edge between the values: quantization
  // must preserve the exact partition.
  Dataset data(1);
  Rng rng(55);
  for (int i = 0; i < 64; ++i) {
    const std::vector<double> x{rng.bernoulli(0.5) ? 1.0 : 0.0};
    data.add(x, x[0]);
  }
  const BinnedMatrix binned(data, 64);
  ASSERT_EQ(binned.num_bins(0), 2);
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_EQ(binned.code(i, 0), data.feature(i, 0) > 0.5 ? 1 : 0);
}

TEST(BinnedMatrixTest, ThreadInvariantConstruction) {
  const Dataset data = make_dataset(400, 56);
  ThreadCountGuard guard;
  set_default_num_threads(1);
  const BinnedMatrix serial(data, 24);
  set_default_num_threads(std::max(4u, std::thread::hardware_concurrency()));
  const BinnedMatrix threaded(data, 24);
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    const auto se = serial.edges(f);
    const auto te = threaded.edges(f);
    ASSERT_EQ(std::vector<double>(se.begin(), se.end()),
              std::vector<double>(te.begin(), te.end()));
    const auto sc = serial.codes(f);
    const auto tc = threaded.codes(f);
    ASSERT_TRUE(std::equal(sc.begin(), sc.end(), tc.begin(), tc.end()));
  }
}

TEST(BinnedMatrixTest, ValidatesArguments) {
  const Dataset data = make_dataset(50, 57);
  EXPECT_THROW(BinnedMatrix(data, 1), Error);
  EXPECT_THROW(BinnedMatrix(data, 257), Error);
  const BinnedMatrix binned(data, 8);
  EXPECT_THROW(binned.edges(kNumFeatures), Error);
  EXPECT_THROW(binned.codes(kNumFeatures), Error);
  EXPECT_THROW(binned.edge(0, -1), Error);
}

TEST(TrainContextTest, CachesPerMaxBinsAndValidates) {
  const Dataset data = make_dataset(100, 58);
  TrainContext ctx(data);
  const BinnedMatrix& a = ctx.bins(16);
  const BinnedMatrix& b = ctx.bins(16);
  EXPECT_EQ(&a, &b);  // same instance reused
  const BinnedMatrix& c = ctx.bins(32);
  EXPECT_NE(&a, &c);
  EXPECT_THROW(ctx.bins(1), Error);
  const ColumnIndex& cols = ctx.columns();
  EXPECT_EQ(&cols, &ctx.columns());
}

}  // namespace
}  // namespace anb
