#include "anb/surrogate/hist_gbdt.hpp"

#include <gtest/gtest.h>

#include "anb/surrogate/gbdt.hpp"
#include "anb/util/error.hpp"
#include "anb/util/metrics.hpp"

namespace anb {
namespace {

Dataset friedman_like(int n, std::uint64_t seed, double noise = 0.0) {
  Dataset ds(5);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    std::vector<double> x(5);
    for (auto& v : x) v = rng.uniform();
    const double y = 10.0 * x[0] * x[1] + 5.0 * x[2] - 3.0 * x[3] +
                     noise * rng.normal();
    ds.add(x, y);
  }
  return ds;
}

TEST(HistGbdtTest, FitsInteractionsWell) {
  const Dataset train = friedman_like(1500, 1);
  const Dataset test = friedman_like(300, 2);
  HistGbdtParams params;
  params.n_estimators = 400;
  params.max_leaves = 31;
  params.learning_rate = 0.1;
  HistGbdt model(params);
  Rng rng(3);
  model.fit(train, rng);
  const FitMetrics m = model.evaluate(test);
  EXPECT_GT(m.r2, 0.96);
  EXPECT_GT(m.kendall_tau, 0.88);
}

TEST(HistGbdtTest, LeafBudgetRespected) {
  const Dataset train = friedman_like(500, 4);
  for (int max_leaves : {2, 4, 8}) {
    HistGbdtParams params;
    params.n_estimators = 5;
    params.max_leaves = max_leaves;
    HistGbdt model(params);
    Rng rng(5);
    model.fit(train, rng);
    EXPECT_EQ(model.num_trees(), 5u);
  }
}

TEST(HistGbdtTest, CoarseBinsStillLearn) {
  const Dataset train = friedman_like(800, 6);
  const Dataset test = friedman_like(200, 7);
  HistGbdtParams params;
  params.max_bins = 8;
  params.n_estimators = 300;
  HistGbdt model(params);
  Rng rng(8);
  model.fit(train, rng);
  EXPECT_GT(model.evaluate(test).r2, 0.85);
}

TEST(HistGbdtTest, BinaryFeaturesExactlyRepresentable) {
  // One-hot style inputs: binning must be lossless, so LGB ~ XGB here.
  Dataset train(4), test(4);
  Rng rng(9);
  auto target = [](const std::vector<double>& x) {
    return 2.0 * x[0] + x[1] - 3.0 * x[2] * x[3];
  };
  for (int i = 0; i < 600; ++i) {
    std::vector<double> x{static_cast<double>(rng.bernoulli(0.5)),
                          static_cast<double>(rng.bernoulli(0.5)),
                          static_cast<double>(rng.bernoulli(0.5)),
                          static_cast<double>(rng.bernoulli(0.5))};
    (i < 500 ? train : test).add(x, target(x));
  }
  HistGbdtParams params;
  params.n_estimators = 300;
  HistGbdt model(params);
  Rng fit_rng(10);
  model.fit(train, fit_rng);
  EXPECT_LT(model.evaluate(test).rmse, 0.05);
}

TEST(HistGbdtTest, PredictBeforeFitThrows) {
  HistGbdt model;
  EXPECT_THROW(model.predict(std::vector<double>{1.0}), Error);
}

TEST(HistGbdtTest, ParamValidation) {
  HistGbdtParams params;
  params.max_leaves = 1;
  EXPECT_THROW(HistGbdt{params}, Error);
  params.max_leaves = 31;
  params.max_bins = 1;
  EXPECT_THROW(HistGbdt{params}, Error);
  params.max_bins = 300;
  EXPECT_THROW(HistGbdt{params}, Error);
}

TEST(HistGbdtTest, ComparableToExactGbdtOnBinaryData) {
  Dataset train(6), test(6);
  Rng rng(11);
  auto target = [](const std::vector<double>& x) {
    return x[0] + 2.0 * x[1] * x[2] - x[3] + 0.5 * x[4] * x[5];
  };
  for (int i = 0; i < 1200; ++i) {
    std::vector<double> x(6);
    for (auto& v : x) v = static_cast<double>(rng.bernoulli(0.5));
    (i < 1000 ? train : test).add(x, target(x));
  }
  HistGbdt lgb;
  Gbdt xgb;
  Rng r1(12), r2(13);
  lgb.fit(train, r1);
  xgb.fit(train, r2);
  const double lgb_rmse = lgb.evaluate(test).rmse;
  const double xgb_rmse = xgb.evaluate(test).rmse;
  EXPECT_LT(lgb_rmse, 0.12);
  EXPECT_LT(std::abs(lgb_rmse - xgb_rmse), 0.1);
}

}  // namespace
}  // namespace anb
