#include "anb/surrogate/gbdt.hpp"

#include <gtest/gtest.h>

#include "anb/util/error.hpp"
#include "anb/util/metrics.hpp"
#include "anb/util/stats.hpp"

namespace anb {
namespace {

Dataset friedman_like(int n, std::uint64_t seed, double noise = 0.0) {
  // Additive + pairwise interaction target on 5 features.
  Dataset ds(5);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    std::vector<double> x(5);
    for (auto& v : x) v = rng.uniform();
    const double y = 10.0 * x[0] * x[1] + 5.0 * x[2] - 3.0 * x[3] +
                     noise * rng.normal();
    ds.add(x, y);
  }
  return ds;
}

TEST(GbdtTest, FitsInteractionsWell) {
  const Dataset train = friedman_like(1500, 1);
  const Dataset test = friedman_like(300, 2);
  GbdtParams params;
  params.n_estimators = 400;
  params.max_depth = 4;
  params.learning_rate = 0.1;
  Gbdt model(params);
  Rng rng(3);
  model.fit(train, rng);
  const FitMetrics m = model.evaluate(test);
  EXPECT_GT(m.r2, 0.97);
  EXPECT_GT(m.kendall_tau, 0.9);
}

TEST(GbdtTest, BoostingDrivesTrainErrorDown) {
  const Dataset train = friedman_like(300, 4);
  auto train_rmse = [&](int n_estimators) {
    GbdtParams params;
    params.n_estimators = n_estimators;
    params.max_depth = 3;
    params.learning_rate = 0.2;
    Gbdt model(params);
    Rng rng(5);
    model.fit(train, rng);
    return model.evaluate(train).rmse;
  };
  const double e10 = train_rmse(10);
  const double e100 = train_rmse(100);
  const double e500 = train_rmse(500);
  EXPECT_LT(e100, e10);
  EXPECT_LT(e500, e100);
  EXPECT_LT(e500, 0.05);
}

TEST(GbdtTest, SingleTreePredictsNearBaseScore) {
  const Dataset train = friedman_like(300, 6);
  GbdtParams params;
  params.n_estimators = 1;
  params.learning_rate = 0.1;
  Gbdt model(params);
  Rng rng(7);
  model.fit(train, rng);
  // With one small-step tree, predictions stay near the target mean.
  const double base = mean(train.targets());
  const double pred = model.predict(train.row(0));
  EXPECT_NEAR(pred, base, 2.0);
}

TEST(GbdtTest, PredictBeforeFitThrows) {
  Gbdt model;
  EXPECT_THROW(model.predict(std::vector<double>{1.0}), Error);
}

TEST(GbdtTest, DeterministicWithoutSubsampling) {
  const Dataset train = friedman_like(200, 8);
  GbdtParams params;
  params.n_estimators = 30;
  Gbdt a(params), b(params);
  Rng ra(1), rb(2);  // different rngs: no stochastic paths used
  a.fit(train, ra);
  b.fit(train, rb);
  EXPECT_DOUBLE_EQ(a.predict(train.row(5)), b.predict(train.row(5)));
}

TEST(GbdtTest, SubsamplingStillLearns) {
  const Dataset train = friedman_like(800, 9);
  const Dataset test = friedman_like(200, 10);
  GbdtParams params;
  params.n_estimators = 300;
  params.subsample = 0.7;
  params.colsample = 0.8;
  Gbdt model(params);
  Rng rng(11);
  model.fit(train, rng);
  EXPECT_GT(model.evaluate(test).r2, 0.9);
}

TEST(GbdtTest, ParamValidation) {
  GbdtParams params;
  params.learning_rate = 0.0;
  EXPECT_THROW(Gbdt{params}, Error);
  params.learning_rate = 0.1;
  params.subsample = 1.5;
  EXPECT_THROW(Gbdt{params}, Error);
  params.subsample = 1.0;
  params.n_estimators = 0;
  EXPECT_THROW(Gbdt{params}, Error);
}

TEST(GbdtTest, HandlesConstantTarget) {
  Dataset train(2);
  for (int i = 0; i < 20; ++i)
    train.add(std::vector<double>{static_cast<double>(i), 0.0}, 7.0);
  Gbdt model;
  Rng rng(12);
  model.fit(train, rng);
  EXPECT_NEAR(model.predict(std::vector<double>{5.0, 0.0}), 7.0, 1e-9);
}

}  // namespace
}  // namespace anb
