// Differential tests for the batched prediction engine: for every
// surrogate family, predict_batch / predict_matrix over a row matrix must
// reproduce the scalar per-row predict() BIT FOR BIT — not approximately.
// This is the exactness guarantee the batched query engine is built on
// (see DESIGN.md "Batched prediction & the query cache"): trees make the
// same comparisons and accumulate leaf values in the same order, SVR
// shares one code path between the scalar and batched entry points, and
// ensembles sum members in member order.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "anb/surrogate/ensemble.hpp"
#include "anb/surrogate/gbdt.hpp"
#include "anb/surrogate/hist_gbdt.hpp"
#include "anb/surrogate/random_forest.hpp"
#include "anb/surrogate/svr.hpp"
#include "anb/surrogate/tree.hpp"
#include "anb/util/error.hpp"
#include "anb/util/rng.hpp"

namespace anb {
namespace {

constexpr std::size_t kNumFeatures = 7;

Dataset make_dataset(int n, std::uint64_t seed) {
  Dataset ds(kNumFeatures);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    std::vector<double> x(kNumFeatures);
    for (auto& v : x) v = rng.uniform();
    // Mix of additive terms, an interaction, and a discrete feature so
    // fitted trees are non-trivial and unbalanced.
    x[6] = static_cast<double>(rng.uniform_index(4));
    const double y =
        3.0 * x[0] - 2.0 * x[1] + 4.0 * x[2] * x[3] + 0.5 * x[6] +
        0.1 * rng.normal();
    ds.add(x, y);
  }
  return ds;
}

/// Row-major query matrix of `n` random rows.
std::vector<double> make_rows(std::size_t n, std::uint64_t seed) {
  std::vector<double> rows(n * kNumFeatures);
  Rng rng(seed);
  for (auto& v : rows) v = rng.uniform();
  return rows;
}

/// The differential check: batch and parallel-matrix outputs must equal
/// the scalar path exactly (EXPECT_EQ on doubles — bit-level for non-NaN).
void expect_batch_matches_scalar(const Surrogate& model, std::size_t n,
                                 std::uint64_t seed) {
  const std::vector<double> rows = make_rows(n, seed);
  std::vector<double> scalar(n), batch(n), matrix(n);
  for (std::size_t i = 0; i < n; ++i)
    scalar[i] = model.predict(
        std::span<const double>(rows).subspan(i * kNumFeatures, kNumFeatures));
  model.predict_batch(rows, kNumFeatures, batch);
  model.predict_matrix(rows, kNumFeatures, matrix);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(scalar[i], batch[i]) << model.name() << " row " << i;
    EXPECT_EQ(scalar[i], matrix[i]) << model.name() << " row " << i;
  }
}

/// Batch sizes covering the interesting regimes: empty, single row, one
/// partial interleave group, one full row block, larger than any thread
/// count and not a multiple of the 64-row block or the 4-row group.
const std::size_t kBatchSizes[] = {0, 1, 3, 64, 257};

template <typename Model>
void run_differential(Model& model, std::uint64_t fit_seed) {
  const Dataset train = make_dataset(400, fit_seed);
  Rng rng(fit_seed + 1);
  model.fit(train, rng);
  for (const std::size_t n : kBatchSizes)
    expect_batch_matches_scalar(model, n, 0xABC + n);
}

TEST(PredictBatchTest, GbdtBitIdentical) {
  GbdtParams p;
  p.n_estimators = 60;
  p.max_depth = 4;
  Gbdt model(p);
  run_differential(model, 11);
}

TEST(PredictBatchTest, HistGbdtBitIdentical) {
  HistGbdtParams p;
  p.n_estimators = 60;
  HistGbdt model(p);
  run_differential(model, 12);
}

TEST(PredictBatchTest, RandomForestBitIdentical) {
  RandomForestParams p;
  p.n_trees = 30;
  RandomForest model(p);
  run_differential(model, 13);
}

TEST(PredictBatchTest, EpsilonSvrBitIdentical) {
  SvrParams p;
  p.kind = SvrKind::kEpsilon;
  Svr model(p);
  run_differential(model, 14);
}

TEST(PredictBatchTest, NuSvrBitIdentical) {
  SvrParams p;
  p.kind = SvrKind::kNu;
  Svr model(p);
  run_differential(model, 15);
}

TEST(PredictBatchTest, EnsembleBitIdentical) {
  GbdtParams member_params;
  member_params.n_estimators = 25;
  EnsembleSurrogate model(
      [member_params] { return std::make_unique<Gbdt>(member_params); },
      /*size=*/3);
  run_differential(model, 16);
}

TEST(PredictBatchTest, RegressionTreeBitIdentical) {
  const Dataset train = make_dataset(300, 17);
  const ColumnIndex columns(train);
  // Variance-reduction special case: g = -y, h = 1 (see TreeParams docs).
  std::vector<double> g(train.size()), h(train.size(), 1.0),
      weight(train.size(), 1.0);
  for (std::size_t i = 0; i < train.size(); ++i) g[i] = -train.target(i);
  TreeParams p;
  p.max_depth = 6;
  p.lambda = 0.0;
  Rng tree_rng(170);
  const RegressionTree tree =
      build_tree(train, columns, g, h, weight, p, tree_rng);
  const std::size_t n = 257;
  const std::vector<double> rows = make_rows(n, 18);
  std::vector<double> batch(n);
  tree.predict_batch(rows, kNumFeatures, batch);
  for (std::size_t i = 0; i < n; ++i) {
    const double scalar = tree.predict(
        std::span<const double>(rows).subspan(i * kNumFeatures, kNumFeatures));
    EXPECT_EQ(scalar, batch[i]) << "row " << i;
  }
}

TEST(PredictBatchTest, DefaultFallbackMatchesScalar) {
  // A surrogate without a vectorized override goes through the base-class
  // scalar fallback; the contract must hold there too. SVR predicts via
  // its batched path, so wrap one and strip the override by calling
  // through the base pointer after slicing to the default implementation:
  // instead, simply verify the base fallback on a model whose predict is
  // deterministic — use Svr but call Surrogate::predict_batch explicitly.
  const Dataset train = make_dataset(200, 19);
  Svr model;
  Rng rng(20);
  model.fit(train, rng);
  const std::size_t n = 17;
  const std::vector<double> rows = make_rows(n, 21);
  std::vector<double> fallback(n);
  model.Surrogate::predict_batch(rows, kNumFeatures, fallback);
  for (std::size_t i = 0; i < n; ++i) {
    const double scalar = model.predict(
        std::span<const double>(rows).subspan(i * kNumFeatures, kNumFeatures));
    EXPECT_EQ(scalar, fallback[i]) << "row " << i;
  }
}

TEST(PredictBatchTest, SizeMismatchThrows) {
  const Dataset train = make_dataset(200, 22);
  GbdtParams p;
  p.n_estimators = 5;
  Gbdt model(p);
  Rng rng(23);
  model.fit(train, rng);
  const std::vector<double> rows = make_rows(4, 24);
  std::vector<double> out(3);  // 4 rows but room for 3 outputs
  EXPECT_THROW(model.predict_batch(rows, kNumFeatures, out), Error);
}

TEST(PredictBatchTest, UnfittedThrows) {
  Gbdt model;
  const std::vector<double> rows = make_rows(2, 25);
  std::vector<double> out(2);
  EXPECT_THROW(model.predict_batch(rows, kNumFeatures, out), Error);
}

}  // namespace
}  // namespace anb
