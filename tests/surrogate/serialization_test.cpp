#include <gtest/gtest.h>

#include "anb/surrogate/gbdt.hpp"
#include "anb/surrogate/hist_gbdt.hpp"
#include "anb/surrogate/random_forest.hpp"
#include "anb/surrogate/surrogate.hpp"
#include "anb/surrogate/svr.hpp"
#include "anb/util/error.hpp"

namespace anb {
namespace {

Dataset make_dataset(int n, std::uint64_t seed) {
  Dataset ds(4);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform(),
                          static_cast<double>(rng.bernoulli(0.5))};
    ds.add(x, 2.0 * x[0] - x[1] + 0.5 * x[2] * x[3]);
  }
  return ds;
}

class SerializationTest : public ::testing::Test {
 protected:
  void round_trip_and_compare(Surrogate& model) {
    const Dataset train = make_dataset(300, 1);
    Rng rng(2);
    model.fit(train, rng);
    const Json payload = model.to_json();
    const auto restored = surrogate_from_json(payload);
    EXPECT_EQ(restored->name(), model.name());
    Rng probe(3);
    for (int i = 0; i < 50; ++i) {
      const std::vector<double> x{probe.uniform(), probe.uniform(),
                                  probe.uniform(),
                                  static_cast<double>(probe.bernoulli(0.5))};
      EXPECT_DOUBLE_EQ(restored->predict(x), model.predict(x))
          << model.name();
    }
    // Text round trip too (what save/load does).
    const auto reparsed = surrogate_from_json(Json::parse(payload.dump()));
    const std::vector<double> x{0.1, 0.2, 0.3, 1.0};
    EXPECT_NEAR(reparsed->predict(x), model.predict(x), 1e-12);
  }
};

TEST_F(SerializationTest, GbdtRoundTrips) {
  GbdtParams p;
  p.n_estimators = 40;
  Gbdt model(p);
  round_trip_and_compare(model);
}

TEST_F(SerializationTest, HistGbdtRoundTrips) {
  HistGbdtParams p;
  p.n_estimators = 40;
  HistGbdt model(p);
  round_trip_and_compare(model);
}

TEST_F(SerializationTest, RandomForestRoundTrips) {
  RandomForestParams p;
  p.n_trees = 25;
  RandomForest model(p);
  round_trip_and_compare(model);
}

TEST_F(SerializationTest, EpsilonSvrRoundTrips) {
  SvrParams p;
  p.kind = SvrKind::kEpsilon;
  p.gamma = 0.5;
  Svr model(p);
  round_trip_and_compare(model);
}

TEST_F(SerializationTest, NuSvrRoundTrips) {
  SvrParams p;
  p.kind = SvrKind::kNu;
  p.nu = 0.4;
  p.gamma = 0.5;
  Svr model(p);
  round_trip_and_compare(model);
}

TEST_F(SerializationTest, UnknownTypeRejected) {
  Json j = Json::object();
  j["type"] = "gaussian-process";
  EXPECT_THROW(surrogate_from_json(j), Error);
  EXPECT_THROW(surrogate_from_json(Json::object()), Error);
}

TEST_F(SerializationTest, WrongTagRejectedByConcreteLoaders) {
  GbdtParams p;
  p.n_estimators = 5;
  Gbdt model(p);
  const Dataset train = make_dataset(50, 4);
  Rng rng(5);
  model.fit(train, rng);
  Json j = model.to_json();
  j["type"] = "rf";
  EXPECT_THROW(Gbdt::from_json(j), Error);
}

}  // namespace
}  // namespace anb
