#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "anb/anb/benchmark.hpp"
#include "anb/surrogate/ensemble.hpp"
#include "anb/surrogate/gbdt.hpp"
#include "anb/surrogate/hist_gbdt.hpp"
#include "anb/surrogate/random_forest.hpp"
#include "anb/surrogate/surrogate.hpp"
#include "anb/surrogate/svr.hpp"
#include "anb/util/error.hpp"

namespace anb {
namespace {

Dataset make_dataset(int n, std::uint64_t seed) {
  Dataset ds(4);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform(),
                          static_cast<double>(rng.bernoulli(0.5))};
    ds.add(x, 2.0 * x[0] - x[1] + 0.5 * x[2] * x[3]);
  }
  return ds;
}

class SerializationTest : public ::testing::Test {
 protected:
  void round_trip_and_compare(Surrogate& model) {
    const Dataset train = make_dataset(300, 1);
    Rng rng(2);
    model.fit(train, rng);
    const Json payload = model.to_json();
    const auto restored = surrogate_from_json(payload);
    EXPECT_EQ(restored->name(), model.name());
    Rng probe(3);
    std::vector<double> probe_rows;
    for (int i = 0; i < 50; ++i) {
      const std::vector<double> x{probe.uniform(), probe.uniform(),
                                  probe.uniform(),
                                  static_cast<double>(probe.bernoulli(0.5))};
      probe_rows.insert(probe_rows.end(), x.begin(), x.end());
      EXPECT_DOUBLE_EQ(restored->predict(x), model.predict(x))
          << model.name();
    }
    // The restored model rebuilds its flattened forest from the decoded
    // trees; its batched path must still match the original bit for bit.
    std::vector<double> original_batch(50), restored_batch(50);
    model.predict_batch(probe_rows, 4, original_batch);
    restored->predict_batch(probe_rows, 4, restored_batch);
    for (int i = 0; i < 50; ++i)
      EXPECT_EQ(original_batch[static_cast<std::size_t>(i)],
                restored_batch[static_cast<std::size_t>(i)])
          << model.name() << " batch row " << i;
    // Text round trip too (what save/load does).
    const auto reparsed = surrogate_from_json(Json::parse(payload.dump()));
    const std::vector<double> x{0.1, 0.2, 0.3, 1.0};
    EXPECT_NEAR(reparsed->predict(x), model.predict(x), 1e-12);
  }
};

TEST_F(SerializationTest, GbdtRoundTrips) {
  GbdtParams p;
  p.n_estimators = 40;
  Gbdt model(p);
  round_trip_and_compare(model);
}

TEST_F(SerializationTest, HistGbdtRoundTrips) {
  HistGbdtParams p;
  p.n_estimators = 40;
  HistGbdt model(p);
  round_trip_and_compare(model);
}

TEST_F(SerializationTest, RandomForestRoundTrips) {
  RandomForestParams p;
  p.n_trees = 25;
  RandomForest model(p);
  round_trip_and_compare(model);
}

TEST_F(SerializationTest, EpsilonSvrRoundTrips) {
  SvrParams p;
  p.kind = SvrKind::kEpsilon;
  p.gamma = 0.5;
  Svr model(p);
  round_trip_and_compare(model);
}

TEST_F(SerializationTest, NuSvrRoundTrips) {
  SvrParams p;
  p.kind = SvrKind::kNu;
  p.nu = 0.4;
  p.gamma = 0.5;
  Svr model(p);
  round_trip_and_compare(model);
}

TEST_F(SerializationTest, UnknownTypeRejected) {
  Json j = Json::object();
  j["type"] = "gaussian-process";
  EXPECT_THROW(surrogate_from_json(j), Error);
  EXPECT_THROW(surrogate_from_json(Json::object()), Error);
}

TEST_F(SerializationTest, WrongTagRejectedByConcreteLoaders) {
  GbdtParams p;
  p.n_estimators = 5;
  Gbdt model(p);
  const Dataset train = make_dataset(50, 4);
  Rng rng(5);
  model.fit(train, rng);
  Json j = model.to_json();
  j["type"] = "rf";
  EXPECT_THROW(Gbdt::from_json(j), Error);
}

TEST_F(SerializationTest, EnsembleRoundTrips) {
  GbdtParams member_params;
  member_params.n_estimators = 10;
  EnsembleSurrogate model(
      [member_params] { return std::make_unique<Gbdt>(member_params); },
      /*size=*/3);
  round_trip_and_compare(model);
}

/// A fitted Gbdt payload with one tree node replaced by the given object.
/// Lets the malformed-payload tests corrupt exactly one field at a time.
Json gbdt_payload_with_node(const Json& node) {
  GbdtParams p;
  p.n_estimators = 3;
  Gbdt model(p);
  const Dataset train = make_dataset(50, 6);
  Rng rng(7);
  model.fit(train, rng);
  Json j = model.to_json();
  j["trees"].as_array()[0].as_array()[0] = node;
  return j;
}

Json tree_node(int f, double t, int l, int r, double v) {
  Json jn = Json::object();
  jn["f"] = f;
  jn["t"] = t;
  jn["l"] = l;
  jn["r"] = r;
  jn["v"] = v;
  return jn;
}

TEST_F(SerializationTest, DanglingChildIndexRejected) {
  // Internal node pointing past the tree's node array.
  EXPECT_THROW(
      surrogate_from_json(gbdt_payload_with_node(
          tree_node(/*f=*/0, /*t=*/0.5, /*l=*/9999, /*r=*/1, /*v=*/0.0))),
      Error);
  EXPECT_THROW(
      surrogate_from_json(gbdt_payload_with_node(
          tree_node(/*f=*/0, /*t=*/0.5, /*l=*/1, /*r=*/-3, /*v=*/0.0))),
      Error);
}

TEST_F(SerializationTest, SelfChildRejectedByFlattening) {
  // An internal node that is its own child passes the range check but
  // would loop forever in traversal; the flattened-forest rebuild inside
  // from_json must reject it (leaves are the only legal self-loops).
  EXPECT_THROW(
      surrogate_from_json(gbdt_payload_with_node(
          tree_node(/*f=*/0, /*t=*/0.5, /*l=*/0, /*r=*/1, /*v=*/0.0))),
      Error);
}

TEST_F(SerializationTest, MissingFieldsRejected) {
  GbdtParams p;
  p.n_estimators = 3;
  Gbdt model(p);
  const Dataset train = make_dataset(50, 8);
  Rng rng(9);
  model.fit(train, rng);

  Json no_trees = model.to_json();
  no_trees.as_object().erase("trees");
  EXPECT_THROW(surrogate_from_json(no_trees), Error);

  Json bad_node = model.to_json();
  bad_node["trees"].as_array()[0].as_array()[0].as_object().erase("t");
  EXPECT_THROW(surrogate_from_json(bad_node), Error);
}

// ---------------------------------------------------------------------------
// Corruption fuzz corpus over saved AccelNASBench payloads: truncations,
// structural bit-flips, and field-drops. Every corrupted file must fail to
// load with anb::Error — never a crash, hang, or silent partial load. The
// whole corpus is seeded and enumerated deterministically, and the suite
// runs under ASan/UBSan in CI, so any out-of-bounds read or UB in the
// parse/decode path is caught, not just wrong error types.

/// One small benchmark (accuracy + two perf surrogates of different
/// families), serialized once and shared by every fuzz case.
const std::string& saved_benchmark_text() {
  static const std::string text = [] {
    const Dataset train = make_dataset(60, 11);
    Rng rng(12);
    const auto fitted = [&](std::unique_ptr<Surrogate> model) {
      Rng fit_rng(13);
      model->fit(train, fit_rng);
      return model;
    };
    GbdtParams gp;
    gp.n_estimators = 3;
    SvrParams sp;
    sp.gamma = 0.5;
    AccelNASBench bench;
    bench.set_accuracy_surrogate(fitted(std::make_unique<Gbdt>(gp)));
    bench.set_perf_surrogate(MetricKey{DeviceKind::kA100, PerfMetric::kThroughput},
                             fitted(std::make_unique<Gbdt>(gp)));
    bench.set_perf_surrogate(MetricKey{DeviceKind::kZcu102, PerfMetric::kLatency},
                             fitted(std::make_unique<Svr>(sp)));
    return bench.to_json().dump();
  }();
  return text;
}

/// Walks the document in deterministic order and erases the `target`-th
/// droppable object key. Keys whose removal legally yields a *valid*
/// benchmark are not droppable: the optional top-level "accuracy" and the
/// entries of the top-level "perf" map (each perf surrogate is optional).
/// Returns true once a key was erased; `target` counts down in-place.
bool drop_nth_key(Json& j, int& target, bool is_root, bool is_perf_map) {
  if (j.is_array()) {
    for (Json& elem : j.as_array()) {
      if (drop_nth_key(elem, target, false, false)) return true;
    }
    return false;
  }
  if (!j.is_object()) return false;
  for (auto& [key, child] : j.as_object()) {
    const bool droppable =
        !is_perf_map && !(is_root && key == "accuracy");
    if (droppable && target-- == 0) {
      j.as_object().erase(key);
      return true;
    }
    if (drop_nth_key(child, target, false, is_root && key == "perf"))
      return true;
  }
  return false;
}

class BenchmarkCorruptionFuzz : public ::testing::Test {
 protected:
  /// Writes `payload` to a scratch file and requires load() to reject it
  /// with anb::Error specifically.
  void expect_load_throws(const std::string& payload, const std::string& what) {
    const std::string path =
        ::testing::TempDir() + "anb_corruption_fuzz.json";
    write_text_file(path, payload);
    try {
      AccelNASBench::load(path);
      ADD_FAILURE() << "corrupted payload loaded successfully: " << what;
    } catch (const Error&) {
      // Expected: the anb::Error family, never std:: exceptions or UB.
    }
    ++cases_;
  }

  int cases_ = 0;
};

TEST_F(BenchmarkCorruptionFuzz, TruncationsAlwaysThrow) {
  const std::string& text = saved_benchmark_text();
  // 120 strict prefixes spread over the document, including the empty one.
  const int kCuts = 120;
  for (int i = 0; i < kCuts; ++i) {
    const std::size_t cut = text.size() * static_cast<std::size_t>(i) /
                            static_cast<std::size_t>(kCuts);
    expect_load_throws(text.substr(0, cut),
                       "truncation at " + std::to_string(cut));
  }
  EXPECT_EQ(cases_, kCuts);
}

TEST_F(BenchmarkCorruptionFuzz, StructuralBitFlipsAlwaysThrow) {
  const std::string& text = saved_benchmark_text();
  std::vector<std::size_t> structural;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (ch == '{' || ch == '}' || ch == '[' || ch == ']' || ch == ':')
      structural.push_back(i);
  }
  ASSERT_GT(structural.size(), 10u);

  Rng rng(0xF1A9);
  const int kFlips = 60;
  for (int i = 0; i < kFlips; ++i) {
    const std::size_t pos = structural[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(structural.size()) - 1))];
    const int bit = static_cast<int>(rng.uniform_int(0, 7));
    std::string corrupted = text;
    corrupted[pos] = static_cast<char>(
        static_cast<unsigned char>(corrupted[pos]) ^ (1u << bit));
    expect_load_throws(corrupted, "bit " + std::to_string(bit) + " at " +
                                      std::to_string(pos));
  }
  EXPECT_EQ(cases_, kFlips);
}

TEST_F(BenchmarkCorruptionFuzz, FieldDropsAlwaysThrow) {
  const Json parsed = Json::parse(saved_benchmark_text());
  // Count droppable keys with a dry run of the same deterministic walk.
  int total = 0;
  while (true) {
    Json probe = parsed;
    int target = total;
    if (!drop_nth_key(probe, target, true, false)) break;
    ++total;
  }
  ASSERT_GE(total, 30);

  for (int k = 0; k < total; ++k) {
    Json corrupted = parsed;
    int target = k;
    ASSERT_TRUE(drop_nth_key(corrupted, target, true, false));
    expect_load_throws(corrupted.dump(), "field drop #" + std::to_string(k));
  }
  EXPECT_EQ(cases_, total);
}

TEST_F(BenchmarkCorruptionFuzz, CorpusMeetsMinimumSize) {
  // The three generators above enumerate deterministically; this guards
  // the corpus floor the robustness contract promises (>= 200 cases).
  const Json parsed = Json::parse(saved_benchmark_text());
  int drops = 0;
  while (true) {
    Json probe = parsed;
    int target = drops;
    if (!drop_nth_key(probe, target, true, false)) break;
    ++drops;
  }
  EXPECT_GE(120 + 60 + drops, 200);
}

TEST_F(BenchmarkCorruptionFuzz, UncorruptedPayloadStillLoads) {
  // Control case: the corpus template itself round-trips, so every failure
  // above is attributable to the injected corruption.
  const std::string path = ::testing::TempDir() + "anb_fuzz_control.json";
  write_text_file(path, saved_benchmark_text());
  const AccelNASBench bench = AccelNASBench::load(path);
  EXPECT_TRUE(bench.has_accuracy());
  EXPECT_EQ(bench.perf_targets().size(), 2u);
}

}  // namespace
}  // namespace anb
