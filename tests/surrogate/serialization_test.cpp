#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "anb/surrogate/ensemble.hpp"
#include "anb/surrogate/gbdt.hpp"
#include "anb/surrogate/hist_gbdt.hpp"
#include "anb/surrogate/random_forest.hpp"
#include "anb/surrogate/surrogate.hpp"
#include "anb/surrogate/svr.hpp"
#include "anb/util/error.hpp"

namespace anb {
namespace {

Dataset make_dataset(int n, std::uint64_t seed) {
  Dataset ds(4);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform(),
                          static_cast<double>(rng.bernoulli(0.5))};
    ds.add(x, 2.0 * x[0] - x[1] + 0.5 * x[2] * x[3]);
  }
  return ds;
}

class SerializationTest : public ::testing::Test {
 protected:
  void round_trip_and_compare(Surrogate& model) {
    const Dataset train = make_dataset(300, 1);
    Rng rng(2);
    model.fit(train, rng);
    const Json payload = model.to_json();
    const auto restored = surrogate_from_json(payload);
    EXPECT_EQ(restored->name(), model.name());
    Rng probe(3);
    std::vector<double> probe_rows;
    for (int i = 0; i < 50; ++i) {
      const std::vector<double> x{probe.uniform(), probe.uniform(),
                                  probe.uniform(),
                                  static_cast<double>(probe.bernoulli(0.5))};
      probe_rows.insert(probe_rows.end(), x.begin(), x.end());
      EXPECT_DOUBLE_EQ(restored->predict(x), model.predict(x))
          << model.name();
    }
    // The restored model rebuilds its flattened forest from the decoded
    // trees; its batched path must still match the original bit for bit.
    std::vector<double> original_batch(50), restored_batch(50);
    model.predict_batch(probe_rows, 4, original_batch);
    restored->predict_batch(probe_rows, 4, restored_batch);
    for (int i = 0; i < 50; ++i)
      EXPECT_EQ(original_batch[static_cast<std::size_t>(i)],
                restored_batch[static_cast<std::size_t>(i)])
          << model.name() << " batch row " << i;
    // Text round trip too (what save/load does).
    const auto reparsed = surrogate_from_json(Json::parse(payload.dump()));
    const std::vector<double> x{0.1, 0.2, 0.3, 1.0};
    EXPECT_NEAR(reparsed->predict(x), model.predict(x), 1e-12);
  }
};

TEST_F(SerializationTest, GbdtRoundTrips) {
  GbdtParams p;
  p.n_estimators = 40;
  Gbdt model(p);
  round_trip_and_compare(model);
}

TEST_F(SerializationTest, HistGbdtRoundTrips) {
  HistGbdtParams p;
  p.n_estimators = 40;
  HistGbdt model(p);
  round_trip_and_compare(model);
}

TEST_F(SerializationTest, RandomForestRoundTrips) {
  RandomForestParams p;
  p.n_trees = 25;
  RandomForest model(p);
  round_trip_and_compare(model);
}

TEST_F(SerializationTest, EpsilonSvrRoundTrips) {
  SvrParams p;
  p.kind = SvrKind::kEpsilon;
  p.gamma = 0.5;
  Svr model(p);
  round_trip_and_compare(model);
}

TEST_F(SerializationTest, NuSvrRoundTrips) {
  SvrParams p;
  p.kind = SvrKind::kNu;
  p.nu = 0.4;
  p.gamma = 0.5;
  Svr model(p);
  round_trip_and_compare(model);
}

TEST_F(SerializationTest, UnknownTypeRejected) {
  Json j = Json::object();
  j["type"] = "gaussian-process";
  EXPECT_THROW(surrogate_from_json(j), Error);
  EXPECT_THROW(surrogate_from_json(Json::object()), Error);
}

TEST_F(SerializationTest, WrongTagRejectedByConcreteLoaders) {
  GbdtParams p;
  p.n_estimators = 5;
  Gbdt model(p);
  const Dataset train = make_dataset(50, 4);
  Rng rng(5);
  model.fit(train, rng);
  Json j = model.to_json();
  j["type"] = "rf";
  EXPECT_THROW(Gbdt::from_json(j), Error);
}

TEST_F(SerializationTest, EnsembleRoundTrips) {
  GbdtParams member_params;
  member_params.n_estimators = 10;
  EnsembleSurrogate model(
      [member_params] { return std::make_unique<Gbdt>(member_params); },
      /*size=*/3);
  round_trip_and_compare(model);
}

/// A fitted Gbdt payload with one tree node replaced by the given object.
/// Lets the malformed-payload tests corrupt exactly one field at a time.
Json gbdt_payload_with_node(const Json& node) {
  GbdtParams p;
  p.n_estimators = 3;
  Gbdt model(p);
  const Dataset train = make_dataset(50, 6);
  Rng rng(7);
  model.fit(train, rng);
  Json j = model.to_json();
  j["trees"].as_array()[0].as_array()[0] = node;
  return j;
}

Json tree_node(int f, double t, int l, int r, double v) {
  Json jn = Json::object();
  jn["f"] = f;
  jn["t"] = t;
  jn["l"] = l;
  jn["r"] = r;
  jn["v"] = v;
  return jn;
}

TEST_F(SerializationTest, DanglingChildIndexRejected) {
  // Internal node pointing past the tree's node array.
  EXPECT_THROW(
      surrogate_from_json(gbdt_payload_with_node(
          tree_node(/*f=*/0, /*t=*/0.5, /*l=*/9999, /*r=*/1, /*v=*/0.0))),
      Error);
  EXPECT_THROW(
      surrogate_from_json(gbdt_payload_with_node(
          tree_node(/*f=*/0, /*t=*/0.5, /*l=*/1, /*r=*/-3, /*v=*/0.0))),
      Error);
}

TEST_F(SerializationTest, SelfChildRejectedByFlattening) {
  // An internal node that is its own child passes the range check but
  // would loop forever in traversal; the flattened-forest rebuild inside
  // from_json must reject it (leaves are the only legal self-loops).
  EXPECT_THROW(
      surrogate_from_json(gbdt_payload_with_node(
          tree_node(/*f=*/0, /*t=*/0.5, /*l=*/0, /*r=*/1, /*v=*/0.0))),
      Error);
}

TEST_F(SerializationTest, MissingFieldsRejected) {
  GbdtParams p;
  p.n_estimators = 3;
  Gbdt model(p);
  const Dataset train = make_dataset(50, 8);
  Rng rng(9);
  model.fit(train, rng);

  Json no_trees = model.to_json();
  no_trees.as_object().erase("trees");
  EXPECT_THROW(surrogate_from_json(no_trees), Error);

  Json bad_node = model.to_json();
  bad_node["trees"].as_array()[0].as_array()[0].as_object().erase("t");
  EXPECT_THROW(surrogate_from_json(bad_node), Error);
}

}  // namespace
}  // namespace anb
