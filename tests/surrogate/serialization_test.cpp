#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "anb/anb/benchmark.hpp"
#include "anb/surrogate/ensemble.hpp"
#include "anb/surrogate/gbdt.hpp"
#include "anb/surrogate/hist_gbdt.hpp"
#include "anb/surrogate/random_forest.hpp"
#include "anb/surrogate/surrogate.hpp"
#include "anb/surrogate/svr.hpp"
#include "anb/util/binary.hpp"
#include "anb/util/error.hpp"
#include "anb/util/io.hpp"

namespace anb {
namespace {

Dataset make_dataset(int n, std::uint64_t seed) {
  Dataset ds(4);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform(),
                          static_cast<double>(rng.bernoulli(0.5))};
    ds.add(x, 2.0 * x[0] - x[1] + 0.5 * x[2] * x[3]);
  }
  return ds;
}

class SerializationTest : public ::testing::Test {
 protected:
  void round_trip_and_compare(Surrogate& model) {
    const Dataset train = make_dataset(300, 1);
    Rng rng(2);
    model.fit(train, rng);
    const Json payload = model.to_json();
    const auto restored = surrogate_from_json(payload);
    EXPECT_EQ(restored->name(), model.name());
    Rng probe(3);
    std::vector<double> probe_rows;
    for (int i = 0; i < 50; ++i) {
      const std::vector<double> x{probe.uniform(), probe.uniform(),
                                  probe.uniform(),
                                  static_cast<double>(probe.bernoulli(0.5))};
      probe_rows.insert(probe_rows.end(), x.begin(), x.end());
      EXPECT_DOUBLE_EQ(restored->predict(x), model.predict(x))
          << model.name();
    }
    // The restored model rebuilds its flattened forest from the decoded
    // trees; its batched path must still match the original bit for bit.
    std::vector<double> original_batch(50), restored_batch(50);
    model.predict_batch(probe_rows, 4, original_batch);
    restored->predict_batch(probe_rows, 4, restored_batch);
    for (int i = 0; i < 50; ++i)
      EXPECT_EQ(original_batch[static_cast<std::size_t>(i)],
                restored_batch[static_cast<std::size_t>(i)])
          << model.name() << " batch row " << i;
    // Text round trip too (what save/load does).
    const auto reparsed = surrogate_from_json(Json::parse(payload.dump()));
    const std::vector<double> x{0.1, 0.2, 0.3, 1.0};
    EXPECT_NEAR(reparsed->predict(x), model.predict(x), 1e-12);
  }
};

TEST_F(SerializationTest, GbdtRoundTrips) {
  GbdtParams p;
  p.n_estimators = 40;
  Gbdt model(p);
  round_trip_and_compare(model);
}

TEST_F(SerializationTest, HistGbdtRoundTrips) {
  HistGbdtParams p;
  p.n_estimators = 40;
  HistGbdt model(p);
  round_trip_and_compare(model);
}

TEST_F(SerializationTest, RandomForestRoundTrips) {
  RandomForestParams p;
  p.n_trees = 25;
  RandomForest model(p);
  round_trip_and_compare(model);
}

TEST_F(SerializationTest, EpsilonSvrRoundTrips) {
  SvrParams p;
  p.kind = SvrKind::kEpsilon;
  p.gamma = 0.5;
  Svr model(p);
  round_trip_and_compare(model);
}

TEST_F(SerializationTest, NuSvrRoundTrips) {
  SvrParams p;
  p.kind = SvrKind::kNu;
  p.nu = 0.4;
  p.gamma = 0.5;
  Svr model(p);
  round_trip_and_compare(model);
}

TEST_F(SerializationTest, UnknownTypeRejected) {
  Json j = Json::object();
  j["type"] = "gaussian-process";
  EXPECT_THROW(surrogate_from_json(j), Error);
  EXPECT_THROW(surrogate_from_json(Json::object()), Error);
}

TEST_F(SerializationTest, WrongTagRejectedByConcreteLoaders) {
  GbdtParams p;
  p.n_estimators = 5;
  Gbdt model(p);
  const Dataset train = make_dataset(50, 4);
  Rng rng(5);
  model.fit(train, rng);
  Json j = model.to_json();
  j["type"] = "rf";
  EXPECT_THROW(Gbdt::from_json(j), Error);
}

TEST_F(SerializationTest, EnsembleRoundTrips) {
  GbdtParams member_params;
  member_params.n_estimators = 10;
  EnsembleSurrogate model(
      [member_params] { return std::make_unique<Gbdt>(member_params); },
      /*size=*/3);
  round_trip_and_compare(model);
}

/// A fitted Gbdt payload with one tree node replaced by the given object.
/// Lets the malformed-payload tests corrupt exactly one field at a time.
Json gbdt_payload_with_node(const Json& node) {
  GbdtParams p;
  p.n_estimators = 3;
  Gbdt model(p);
  const Dataset train = make_dataset(50, 6);
  Rng rng(7);
  model.fit(train, rng);
  Json j = model.to_json();
  j["trees"].as_array()[0].as_array()[0] = node;
  return j;
}

Json tree_node(int f, double t, int l, int r, double v) {
  Json jn = Json::object();
  jn["f"] = f;
  jn["t"] = t;
  jn["l"] = l;
  jn["r"] = r;
  jn["v"] = v;
  return jn;
}

TEST_F(SerializationTest, DanglingChildIndexRejected) {
  // Internal node pointing past the tree's node array.
  EXPECT_THROW(
      surrogate_from_json(gbdt_payload_with_node(
          tree_node(/*f=*/0, /*t=*/0.5, /*l=*/9999, /*r=*/1, /*v=*/0.0))),
      Error);
  EXPECT_THROW(
      surrogate_from_json(gbdt_payload_with_node(
          tree_node(/*f=*/0, /*t=*/0.5, /*l=*/1, /*r=*/-3, /*v=*/0.0))),
      Error);
}

TEST_F(SerializationTest, SelfChildRejectedByFlattening) {
  // An internal node that is its own child passes the range check but
  // would loop forever in traversal; the flattened-forest rebuild inside
  // from_json must reject it (leaves are the only legal self-loops).
  EXPECT_THROW(
      surrogate_from_json(gbdt_payload_with_node(
          tree_node(/*f=*/0, /*t=*/0.5, /*l=*/0, /*r=*/1, /*v=*/0.0))),
      Error);
}

TEST_F(SerializationTest, MissingFieldsRejected) {
  GbdtParams p;
  p.n_estimators = 3;
  Gbdt model(p);
  const Dataset train = make_dataset(50, 8);
  Rng rng(9);
  model.fit(train, rng);

  Json no_trees = model.to_json();
  no_trees.as_object().erase("trees");
  EXPECT_THROW(surrogate_from_json(no_trees), Error);

  Json bad_node = model.to_json();
  bad_node["trees"].as_array()[0].as_array()[0].as_object().erase("t");
  EXPECT_THROW(surrogate_from_json(bad_node), Error);
}

// ---------------------------------------------------------------------------
// Corruption fuzz corpus over saved AccelNASBench payloads: truncations,
// structural bit-flips, and field-drops. Every corrupted file must fail to
// load with anb::Error — never a crash, hang, or silent partial load. The
// whole corpus is seeded and enumerated deterministically, and the suite
// runs under ASan/UBSan in CI, so any out-of-bounds read or UB in the
// parse/decode path is caught, not just wrong error types.

/// One small benchmark (accuracy + two perf surrogates of different
/// families), shared by the text and binary fuzz corpora.
AccelNASBench make_fuzz_benchmark() {
  const Dataset train = make_dataset(60, 11);
  const auto fitted = [&](std::unique_ptr<Surrogate> model) {
    Rng fit_rng(13);
    model->fit(train, fit_rng);
    return model;
  };
  GbdtParams gp;
  gp.n_estimators = 3;
  SvrParams sp;
  sp.gamma = 0.5;
  AccelNASBench bench;
  bench.set_accuracy_surrogate(fitted(std::make_unique<Gbdt>(gp)));
  bench.set_perf_surrogate(MetricKey{DeviceKind::kA100, PerfMetric::kThroughput},
                           fitted(std::make_unique<Gbdt>(gp)));
  bench.set_perf_surrogate(MetricKey{DeviceKind::kZcu102, PerfMetric::kLatency},
                           fitted(std::make_unique<Svr>(sp)));
  return bench;
}

const std::string& saved_benchmark_text() {
  static const std::string text = make_fuzz_benchmark().to_json().dump();
  return text;
}

/// Walks the document in deterministic order and erases the `target`-th
/// droppable object key. Keys whose removal legally yields a *valid*
/// benchmark are not droppable: the optional top-level "accuracy", the
/// entries of the top-level "perf" map (each perf surrogate is optional),
/// and the top-level "space" tag (absent in pre-multi-space artifacts,
/// which load as MnasNet).
/// Returns true once a key was erased; `target` counts down in-place.
bool drop_nth_key(Json& j, int& target, bool is_root, bool is_perf_map) {
  if (j.is_array()) {
    for (Json& elem : j.as_array()) {
      if (drop_nth_key(elem, target, false, false)) return true;
    }
    return false;
  }
  if (!j.is_object()) return false;
  for (auto& [key, child] : j.as_object()) {
    const bool droppable =
        !is_perf_map &&
        !(is_root && (key == "accuracy" || key == "space"));
    if (droppable && target-- == 0) {
      j.as_object().erase(key);
      return true;
    }
    if (drop_nth_key(child, target, false, is_root && key == "perf"))
      return true;
  }
  return false;
}

class BenchmarkCorruptionFuzz : public ::testing::Test {
 protected:
  /// Writes `payload` to a scratch file and requires load() to reject it
  /// with anb::Error specifically.
  void expect_load_throws(const std::string& payload, const std::string& what) {
    const std::string path =
        ::testing::TempDir() + "anb_corruption_fuzz.json";
    write_text_file(path, payload);
    try {
      AccelNASBench::load(path);
      ADD_FAILURE() << "corrupted payload loaded successfully: " << what;
    } catch (const Error& e) {
      // Expected: the anb::Error family, never std:: exceptions or UB —
      // and the message must name the offending file.
      EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
          << what << ": error does not name the offending path";
    }
    ++cases_;
  }

  int cases_ = 0;
};

TEST_F(BenchmarkCorruptionFuzz, TruncationsAlwaysThrow) {
  const std::string& text = saved_benchmark_text();
  // 120 strict prefixes spread over the document, including the empty one.
  const int kCuts = 120;
  for (int i = 0; i < kCuts; ++i) {
    const std::size_t cut = text.size() * static_cast<std::size_t>(i) /
                            static_cast<std::size_t>(kCuts);
    expect_load_throws(text.substr(0, cut),
                       "truncation at " + std::to_string(cut));
  }
  EXPECT_EQ(cases_, kCuts);
}

TEST_F(BenchmarkCorruptionFuzz, StructuralBitFlipsAlwaysThrow) {
  const std::string& text = saved_benchmark_text();
  std::vector<std::size_t> structural;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (ch == '{' || ch == '}' || ch == '[' || ch == ']' || ch == ':')
      structural.push_back(i);
  }
  ASSERT_GT(structural.size(), 10u);

  Rng rng(0xF1A9);
  const int kFlips = 60;
  for (int i = 0; i < kFlips; ++i) {
    const std::size_t pos = structural[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(structural.size()) - 1))];
    const int bit = static_cast<int>(rng.uniform_int(0, 7));
    std::string corrupted = text;
    corrupted[pos] = static_cast<char>(
        static_cast<unsigned char>(corrupted[pos]) ^ (1u << bit));
    expect_load_throws(corrupted, "bit " + std::to_string(bit) + " at " +
                                      std::to_string(pos));
  }
  EXPECT_EQ(cases_, kFlips);
}

TEST_F(BenchmarkCorruptionFuzz, FieldDropsAlwaysThrow) {
  const Json parsed = Json::parse(saved_benchmark_text());
  // Count droppable keys with a dry run of the same deterministic walk.
  int total = 0;
  while (true) {
    Json probe = parsed;
    int target = total;
    if (!drop_nth_key(probe, target, true, false)) break;
    ++total;
  }
  ASSERT_GE(total, 30);

  for (int k = 0; k < total; ++k) {
    Json corrupted = parsed;
    int target = k;
    ASSERT_TRUE(drop_nth_key(corrupted, target, true, false));
    expect_load_throws(corrupted.dump(), "field drop #" + std::to_string(k));
  }
  EXPECT_EQ(cases_, total);
}

TEST_F(BenchmarkCorruptionFuzz, CorpusMeetsMinimumSize) {
  // The three generators above enumerate deterministically; this guards
  // the corpus floor the robustness contract promises (>= 200 cases).
  const Json parsed = Json::parse(saved_benchmark_text());
  int drops = 0;
  while (true) {
    Json probe = parsed;
    int target = drops;
    if (!drop_nth_key(probe, target, true, false)) break;
    ++drops;
  }
  EXPECT_GE(120 + 60 + drops, 200);
}

TEST_F(BenchmarkCorruptionFuzz, UncorruptedPayloadStillLoads) {
  // Control case: the corpus template itself round-trips, so every failure
  // above is attributable to the injected corruption.
  const std::string path = ::testing::TempDir() + "anb_fuzz_control.json";
  write_text_file(path, saved_benchmark_text());
  const AccelNASBench bench = AccelNASBench::load(path);
  EXPECT_TRUE(bench.has_accuracy());
  EXPECT_EQ(bench.perf_targets().size(), 2u);
}

// ---------------------------------------------------------------------------
// Binary (.anbb) corruption fuzz corpus. Same contract as the text corpus
// — every corrupted file throws anb::Error, never a crash or silent load —
// but the attack surface is different: the container's header fields,
// section table, and raw payloads. Corruptions come in two flavors:
//
//   - raw damage (truncations, bit-flips): the file-size field or the
//     whole-file checksum must catch these before any offset is trusted;
//   - *repatched* damage (tampered field + recomputed checksum): models a
//     deliberately malformed file, so the structural validation itself —
//     tag whitelist, power-of-two alignment, range/overlap/ordering checks
//     — must reject it.
//
// Every case loads through both MapMode::kCopy and MapMode::kMap, so the
// zero-copy mmap path proves it never dereferences an unvalidated offset
// (the suite runs under ASan/UBSan in CI).

std::uint32_t load_u32(const std::string& b, std::size_t at) {
  std::uint32_t v = 0;
  std::memcpy(&v, b.data() + at, sizeof(v));
  return v;
}

std::uint64_t load_u64(const std::string& b, std::size_t at) {
  std::uint64_t v = 0;
  std::memcpy(&v, b.data() + at, sizeof(v));
  return v;
}

void store_u32(std::string& b, std::size_t at, std::uint32_t v) {
  std::memcpy(b.data() + at, &v, sizeof(v));
}

void store_u64(std::string& b, std::size_t at, std::uint64_t v) {
  std::memcpy(b.data() + at, &v, sizeof(v));
}

/// Recompute the whole-file checksum after tampering, so the corruption
/// reaches the structural validators instead of dying at the checksum.
std::string repatch_checksum(std::string bytes) {
  store_u64(bytes, bin::kChecksumOffset, 0);
  store_u64(bytes, bin::kChecksumOffset,
            bin::checksum64({bytes.data(), bytes.size()}));
  return bytes;
}

struct TableEntry {
  std::uint32_t tag = 0;
  std::uint32_t align = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
};

std::vector<TableEntry> parse_section_table(const std::string& bytes) {
  const std::uint32_t count = load_u32(bytes, 16);
  std::vector<TableEntry> entries(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t at = bin::kHeaderSize + i * bin::kSectionEntrySize;
    entries[i] = {load_u32(bytes, at), load_u32(bytes, at + 4),
                  load_u64(bytes, at + 8), load_u64(bytes, at + 16)};
  }
  return entries;
}

const std::string& saved_benchmark_anbb() {
  static const std::string bytes = [] {
    const std::string path = ::testing::TempDir() + "anb_fuzz_template.anbb";
    make_fuzz_benchmark().save_binary(path);
    const auto buf = io::Buffer::read_file(path);
    return std::string(buf->data(), buf->size());
  }();
  return bytes;
}

/// The deterministic corpus: (label, corrupted file image) pairs.
std::vector<std::pair<std::string, std::string>> binary_corruption_corpus() {
  const std::string& good = saved_benchmark_anbb();
  const std::vector<TableEntry> table = parse_section_table(good);
  std::vector<std::pair<std::string, std::string>> corpus;

  // --- Truncations: every header/table/section boundary (+-1 around the
  // section edges) plus evenly spread cuts. All strict prefixes.
  std::set<std::size_t> cuts{0,  1,  bin::kMagicSize, 23, 24, 31,
                             32, 39, bin::kHeaderSize};
  cuts.insert(bin::kHeaderSize + table.size() * bin::kSectionEntrySize);
  for (const TableEntry& e : table) {
    for (const std::size_t at : {e.offset, e.offset + e.size}) {
      if (at > 0) cuts.insert(static_cast<std::size_t>(at) - 1);
      cuts.insert(static_cast<std::size_t>(at));
      cuts.insert(static_cast<std::size_t>(at) + 1);
    }
  }
  const int kSpreadCuts = 90;
  for (int i = 0; i < kSpreadCuts; ++i)
    cuts.insert(good.size() * static_cast<std::size_t>(i) /
                static_cast<std::size_t>(kSpreadCuts));
  for (const std::size_t cut : cuts) {
    if (cut >= good.size()) continue;
    corpus.emplace_back("truncation at " + std::to_string(cut),
                        good.substr(0, cut));
  }

  // --- Raw bit-flips anywhere in the file: the checksum (or an earlier
  // header check) must reject every one.
  Rng rng(0xB1A9);
  const int kFlips = 64;
  for (int i = 0; i < kFlips; ++i) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(good.size()) - 1));
    const int bit = static_cast<int>(rng.uniform_int(0, 7));
    std::string bad = good;
    bad[pos] = static_cast<char>(static_cast<unsigned char>(bad[pos]) ^
                                 (1u << bit));
    corpus.emplace_back(
        "bit flip " + std::to_string(bit) + " at " + std::to_string(pos), bad);
  }

  // --- Header tampering, checksum repatched: each field's own validator
  // must reject it (or, for a zeroed section count, the benchmark loader's
  // own "empty artifact" check).
  {
    std::string bad = good;
    bad[3] = 'X';  // magic
    corpus.emplace_back("magic corrupted", repatch_checksum(bad));
  }
  {
    std::string bad = good;
    store_u32(bad, 8, 0x04030201u);  // byte-swapped endian marker
    corpus.emplace_back("endianness mismatch", repatch_checksum(bad));
  }
  for (const std::uint32_t version : {0u, 2u, 0xFFFFFFFFu}) {
    std::string bad = good;
    store_u32(bad, 12, version);
    corpus.emplace_back("format version " + std::to_string(version),
                        repatch_checksum(bad));
  }
  for (const std::uint32_t count : {0u, 0xFFFFu, 0xFFFFFFFFu}) {
    std::string bad = good;
    store_u32(bad, 16, count);
    corpus.emplace_back("section count " + std::to_string(count),
                        repatch_checksum(bad));
  }
  {
    std::string bad = good;
    store_u64(bad, 24, good.size() + 1);  // file-size field vs real size
    corpus.emplace_back("file size field too large", repatch_checksum(bad));
    store_u64(bad, 24, good.size() - 1);
    corpus.emplace_back("file size field too small", repatch_checksum(bad));
  }

  // --- Section-table tampering, checksum repatched: structural validation
  // (tag whitelist, power-of-two alignment, in-bounds ranges, ascending
  // non-overlapping sections) must reject each mutation.
  for (std::size_t i = 0; i < table.size(); ++i) {
    const std::size_t at = bin::kHeaderSize + i * bin::kSectionEntrySize;
    const auto tampered = [&](const char* what, auto&& mutate) {
      std::string bad = good;
      mutate(bad);
      corpus.emplace_back(
          "section " + std::to_string(i) + ": " + what,
          repatch_checksum(std::move(bad)));
    };
    tampered("tag zero", [&](std::string& b) { store_u32(b, at, 0); });
    tampered("tag unknown",
             [&](std::string& b) { store_u32(b, at, 0xDEADu); });
    tampered("alignment not a power of two",
             [&](std::string& b) { store_u32(b, at + 4, 3); });
    tampered("alignment zero",
             [&](std::string& b) { store_u32(b, at + 4, 0); });
    tampered("offset past end of file", [&](std::string& b) {
      store_u64(b, at + 8, good.size());
    });
    tampered("misaligned / overlapping offset", [&](std::string& b) {
      store_u64(b, at + 8, table[i].offset + 1);
    });
    tampered("size past end of file", [&](std::string& b) {
      store_u64(b, at + 16, good.size());
    });
  }
  // Swapped neighbors break the ascending-offset rule.
  for (std::size_t i = 0; i + 1 < table.size(); ++i) {
    const std::size_t a = bin::kHeaderSize + i * bin::kSectionEntrySize;
    const std::size_t b = a + bin::kSectionEntrySize;
    std::string bad = good;
    store_u64(bad, a + 8, table[i + 1].offset);
    store_u64(bad, a + 16, table[i + 1].size);
    store_u64(bad, b + 8, table[i].offset);
    store_u64(bad, b + 16, table[i].size);
    store_u32(bad, a, table[i + 1].tag);
    store_u32(bad, a + 4, table[i + 1].align);
    store_u32(bad, b, table[i].tag);
    store_u32(bad, b + 4, table[i].align);
    corpus.emplace_back(
        "sections " + std::to_string(i) + "/" + std::to_string(i + 1) +
            " swapped out of order",
        repatch_checksum(std::move(bad)));
  }

  // --- Space-section payload tampering, checksum repatched: the artifact
  // carries a Tag::kSpace descriptor (section version u32 + space id u32);
  // the benchmark loader must reject unknown section versions, unknown
  // space ids, and a descriptor of the wrong size.
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table[i].tag != static_cast<std::uint32_t>(bin::Tag::kSpace))
      continue;
    const auto payload = static_cast<std::size_t>(table[i].offset);
    for (const std::uint32_t version : {0u, 2u, 0xFFFFFFFFu}) {
      std::string bad = good;
      store_u32(bad, payload, version);
      corpus.emplace_back(
          "space section version " + std::to_string(version),
          repatch_checksum(std::move(bad)));
    }
    for (const std::uint32_t id : {0u, 3u, 0xFFFFu, 0xFFFFFFFFu}) {
      std::string bad = good;
      store_u32(bad, payload + 4, id);
      corpus.emplace_back("space id " + std::to_string(id),
                          repatch_checksum(std::move(bad)));
    }
    // In-bounds but wrong-size descriptor (half the struct).
    std::string bad = good;
    store_u64(bad, bin::kHeaderSize + i * bin::kSectionEntrySize + 16, 4);
    corpus.emplace_back("space section truncated to 4 bytes",
                        repatch_checksum(std::move(bad)));
  }

  return corpus;
}

class BinaryCorruptionFuzz : public ::testing::Test {
 protected:
  /// Writes the image to a scratch file and requires load_binary to reject
  /// it with anb::Error — through the heap path and the mmap path — with
  /// the offending path named in the message.
  void expect_rejected(const std::string& label, const std::string& image) {
    const std::string path = ::testing::TempDir() + "anb_corruption.anbb";
    io::write_file(path, {image.data(), image.size()});
    for (const io::MapMode mode : {io::MapMode::kCopy, io::MapMode::kMap}) {
      try {
        AccelNASBench::load_binary(path, mode);
        ADD_FAILURE() << "corrupted artifact loaded: " << label;
      } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
            << label << ": error does not name the offending path";
      }
    }
  }
};

TEST_F(BinaryCorruptionFuzz, EveryCorruptionThrowsAnbError) {
  for (const auto& [label, image] : binary_corruption_corpus())
    expect_rejected(label, image);
}

TEST_F(BinaryCorruptionFuzz, CorpusMeetsMinimumSize) {
  // The robustness contract promises >= 200 deterministic binary cases.
  EXPECT_GE(binary_corruption_corpus().size(), 200u);
}

TEST_F(BinaryCorruptionFuzz, UncorruptedArtifactStillLoads) {
  // Control: the template itself loads in both modes, so every rejection
  // above is attributable to the injected corruption.
  const std::string path = ::testing::TempDir() + "anb_fuzz_control.anbb";
  const std::string& good = saved_benchmark_anbb();
  io::write_file(path, {good.data(), good.size()});
  for (const io::MapMode mode : {io::MapMode::kCopy, io::MapMode::kMap}) {
    const AccelNASBench bench = AccelNASBench::load_binary(path, mode);
    EXPECT_TRUE(bench.has_accuracy());
    EXPECT_EQ(bench.perf_targets().size(), 2u);
  }
}

}  // namespace
}  // namespace anb
