#include "anb/surrogate/tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "anb/util/error.hpp"

namespace anb {
namespace {

/// Fit a plain variance-reduction tree (g = -y, h = 1).
RegressionTree fit_variance_tree(const Dataset& data, TreeParams params,
                                 std::uint64_t seed = 1) {
  const std::size_t n = data.size();
  std::vector<double> g(n), h(n, 1.0), w(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) g[i] = -data.target(i);
  params.lambda = 0.0;
  const ColumnIndex columns(data);
  Rng rng(seed);
  return build_tree(data, columns, g, h, w, params, rng);
}

Dataset and_dataset() {
  // y = AND(x0, x1): needs depth 2 for an exact fit, and unlike XOR the
  // first greedy split already has positive gain.
  Dataset ds(2);
  for (int rep = 0; rep < 4; ++rep) {
    ds.add(std::vector<double>{0, 0}, 0.0);
    ds.add(std::vector<double>{0, 1}, 0.0);
    ds.add(std::vector<double>{1, 0}, 0.0);
    ds.add(std::vector<double>{1, 1}, 1.0);
  }
  return ds;
}

TEST(TreeTest, StumpSplitsOnInformativeFeature) {
  Dataset ds(2);
  // Feature 1 is pure noise; feature 0 perfectly separates targets.
  ds.add(std::vector<double>{0.0, 1.0}, -1.0);
  ds.add(std::vector<double>{0.0, 0.0}, -1.0);
  ds.add(std::vector<double>{1.0, 1.0}, 1.0);
  ds.add(std::vector<double>{1.0, 0.0}, 1.0);
  TreeParams params;
  params.max_depth = 1;
  const RegressionTree tree = fit_variance_tree(ds, params);
  EXPECT_EQ(tree.nodes()[0].feature, 0);
  EXPECT_EQ(tree.num_leaves(), 2);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{0.0, 0.5}), -1.0);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{1.0, 0.5}), 1.0);
}

TEST(TreeTest, DepthTwoSolvesAnd) {
  TreeParams params;
  params.max_depth = 2;
  const RegressionTree tree = fit_variance_tree(and_dataset(), params);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{1, 1}), 1.0);
}

TEST(TreeTest, DepthOneCannotSolveAnd) {
  TreeParams params;
  params.max_depth = 1;
  const RegressionTree tree = fit_variance_tree(and_dataset(), params);
  // One split can only separate a mean-0 side from a mean-0.5 side.
  EXPECT_NEAR(tree.predict(std::vector<double>{1, 1}), 0.5, 1e-9);
  EXPECT_NEAR(tree.predict(std::vector<double>{0, 0}), 0.0, 1e-9);
}

TEST(TreeTest, ConstantTargetGivesSingleLeaf) {
  Dataset ds(2);
  for (int i = 0; i < 10; ++i)
    ds.add(std::vector<double>{static_cast<double>(i), 1.0}, 5.0);
  TreeParams params;
  params.max_depth = 4;
  const RegressionTree tree = fit_variance_tree(ds, params);
  EXPECT_EQ(tree.num_leaves(), 1);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{3.0, 1.0}), 5.0);
}

TEST(TreeTest, MinSamplesLeafRespected) {
  Dataset ds(1);
  // 9 points at x=0 (y=0), 1 point at x=1 (y=10): split would isolate 1 row.
  for (int i = 0; i < 9; ++i) ds.add(std::vector<double>{0.0}, 0.0);
  ds.add(std::vector<double>{1.0}, 10.0);
  TreeParams params;
  params.max_depth = 3;
  params.min_samples_leaf = 2.0;
  const RegressionTree tree = fit_variance_tree(ds, params);
  EXPECT_EQ(tree.num_leaves(), 1);
}

TEST(TreeTest, RowWeightsExcludeRows) {
  Dataset ds(1);
  ds.add(std::vector<double>{0.0}, 0.0);
  ds.add(std::vector<double>{1.0}, 100.0);  // excluded below
  ds.add(std::vector<double>{0.2}, 0.0);
  std::vector<double> g{0.0, -100.0, 0.0};
  std::vector<double> h(3, 1.0);
  std::vector<double> w{1.0, 0.0, 1.0};
  TreeParams params;
  params.max_depth = 2;
  params.lambda = 0.0;
  const ColumnIndex columns(ds);
  Rng rng(1);
  const RegressionTree tree = build_tree(ds, columns, g, h, w, params, rng);
  // The excluded outlier must not influence any leaf.
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{1.0}), 0.0);
}

TEST(TreeTest, LambdaShrinksLeafValues) {
  Dataset ds(1);
  ds.add(std::vector<double>{0.0}, 0.0);
  ds.add(std::vector<double>{1.0}, 4.0);
  const std::size_t n = ds.size();
  std::vector<double> g(n), h(n, 1.0), w(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) g[i] = -ds.target(i);
  TreeParams params;
  params.max_depth = 1;
  params.lambda = 1.0;  // leaf = sum(y) / (count + lambda)
  const ColumnIndex columns(ds);
  Rng rng(1);
  const RegressionTree tree = build_tree(ds, columns, g, h, w, params, rng);
  // Leaf value = sum(y) / (count + lambda): 0/2 and 4/2.
  EXPECT_NEAR(tree.predict(std::vector<double>{0.0}), 0.0, 1e-9);
  EXPECT_NEAR(tree.predict(std::vector<double>{1.0}), 2.0, 1e-9);
}

TEST(TreeTest, GammaBlocksWeakSplits) {
  Dataset ds(1);
  ds.add(std::vector<double>{0.0}, 0.0);
  ds.add(std::vector<double>{1.0}, 0.1);  // tiny gain
  TreeParams params;
  params.max_depth = 2;
  params.gamma = 1.0;
  const RegressionTree tree = fit_variance_tree(ds, params);
  EXPECT_EQ(tree.num_leaves(), 1);
}

TEST(TreeTest, PredictValidatesDimensions) {
  TreeParams params;
  params.max_depth = 2;
  const RegressionTree tree = fit_variance_tree(and_dataset(), params);
  EXPECT_THROW(tree.predict(std::vector<double>{1.0}), Error);
}

TEST(TreeTest, JsonRoundTripPreservesPredictions) {
  TreeParams params;
  params.max_depth = 3;
  Dataset ds(3);
  Rng rng(5);
  for (int i = 0; i < 64; ++i) {
    std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform()};
    const double y = 2.0 * x[0] - x[1] * x[2];
    ds.add(x, y);
  }
  const RegressionTree tree = fit_variance_tree(ds, params);
  const RegressionTree back = RegressionTree::from_json(tree.to_json());
  Rng probe(6);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x{probe.uniform(), probe.uniform(),
                                probe.uniform()};
    EXPECT_DOUBLE_EQ(back.predict(x), tree.predict(x));
  }
}

TEST(TreeTest, ColumnIndexSortsColumns) {
  Dataset ds(2);
  ds.add(std::vector<double>{3.0, 0.0}, 0.0);
  ds.add(std::vector<double>{1.0, 2.0}, 0.0);
  ds.add(std::vector<double>{2.0, 1.0}, 0.0);
  const ColumnIndex columns(ds);
  const auto col0 = columns.sorted_rows(0);
  EXPECT_EQ(col0[0], 1u);
  EXPECT_EQ(col0[1], 2u);
  EXPECT_EQ(col0[2], 0u);
  EXPECT_THROW(columns.sorted_rows(2), Error);
}

TEST(TreeTest, MaxDepthBoundsLeafCount) {
  Dataset ds(4);
  Rng rng(5);
  for (int i = 0; i < 256; ++i) {
    std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform(),
                          rng.uniform()};
    ds.add(x, rng.normal());
  }
  for (int depth : {1, 2, 3, 4}) {
    TreeParams params;
    params.max_depth = depth;
    const RegressionTree tree = fit_variance_tree(ds, params);
    EXPECT_LE(tree.num_leaves(), 1 << depth) << "depth=" << depth;
  }
}

}  // namespace
}  // namespace anb
