#include "anb/surrogate/svr.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "anb/util/error.hpp"
#include "anb/util/metrics.hpp"

namespace anb {
namespace {

Dataset smooth_dataset(int n, std::uint64_t seed, double noise = 0.0) {
  Dataset ds(2);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    std::vector<double> x{rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)};
    const double y = std::sin(x[0]) + 0.5 * x[1] + noise * rng.normal();
    ds.add(x, y);
  }
  return ds;
}

SvrParams eps_params(double c = 10.0, double epsilon = 0.02,
                     double gamma = 0.5) {
  SvrParams p;
  p.kind = SvrKind::kEpsilon;
  p.c = c;
  p.epsilon = epsilon;
  p.gamma = gamma;
  return p;
}

TEST(SvrTest, FitsSmoothFunction) {
  const Dataset train = smooth_dataset(400, 1);
  const Dataset test = smooth_dataset(100, 2);
  Svr model(eps_params());
  Rng rng(3);
  model.fit(train, rng);
  const FitMetrics m = model.evaluate(test);
  EXPECT_GT(m.r2, 0.98);
  EXPECT_GT(m.kendall_tau, 0.93);
}

TEST(SvrTest, WideTubeSparsifiesSupportVectors) {
  const Dataset train = smooth_dataset(300, 4, /*noise=*/0.02);
  Svr narrow(eps_params(10.0, 0.005));
  Svr wide(eps_params(10.0, 0.3));
  Rng r1(5), r2(6);
  narrow.fit(train, r1);
  wide.fit(train, r2);
  EXPECT_LT(wide.num_support_vectors(), narrow.num_support_vectors());
}

TEST(SvrTest, LargerNuMeansMoreSupportVectors) {
  // nu lower-bounds the support-vector fraction (Schölkopf): a larger nu
  // narrows the tube and recruits more SVs.
  const Dataset train = smooth_dataset(250, 7, /*noise=*/0.1);
  auto sv_count = [&](double nu) {
    SvrParams p;
    p.kind = SvrKind::kNu;
    p.c = 10.0;
    p.nu = nu;
    p.gamma = 0.5;
    Svr model(p);
    Rng rng(8);
    model.fit(train, rng);
    return model.num_support_vectors();
  };
  EXPECT_LT(sv_count(0.15), sv_count(0.7));
}

TEST(SvrTest, NuSvrTubeNarrowsWithLargerNu) {
  const Dataset train = smooth_dataset(250, 9, /*noise=*/0.1);
  auto eps_for = [&](double nu) {
    SvrParams p;
    p.kind = SvrKind::kNu;
    p.c = 10.0;
    p.nu = nu;
    p.gamma = 0.5;
    Svr model(p);
    Rng rng(10);
    model.fit(train, rng);
    return model.effective_epsilon();
  };
  EXPECT_GT(eps_for(0.1), eps_for(0.7));
}

TEST(SvrTest, TargetScalingHandlesLargeMagnitudes) {
  // Throughput-style targets in the thousands.
  Dataset train(2), test(2);
  Rng rng(11);
  for (int i = 0; i < 400; ++i) {
    std::vector<double> x{rng.uniform(), rng.uniform()};
    const double y = 3000.0 + 2000.0 * x[0] - 1000.0 * x[1] * x[1];
    (i < 300 ? train : test).add(x, y);
  }
  Svr model(eps_params(10.0, 0.02, 1.0));
  Rng fit_rng(12);
  model.fit(train, fit_rng);
  EXPECT_GT(model.evaluate(test).r2, 0.97);
}

TEST(SvrTest, PredictBeforeFitThrows) {
  Svr model(eps_params());
  EXPECT_THROW(model.predict(std::vector<double>{0.0, 0.0}), Error);
}

TEST(SvrTest, PredictChecksDimension) {
  const Dataset train = smooth_dataset(100, 13);
  Svr model(eps_params());
  Rng rng(14);
  model.fit(train, rng);
  EXPECT_THROW(model.predict(std::vector<double>{0.0}), Error);
}

TEST(SvrTest, ParamValidation) {
  SvrParams p;
  p.c = 0.0;
  EXPECT_THROW(Svr{p}, Error);
  p.c = 1.0;
  p.epsilon = -0.1;
  EXPECT_THROW(Svr{p}, Error);
  p.epsilon = 0.1;
  p.nu = 1.5;
  EXPECT_THROW(Svr{p}, Error);
}

TEST(SvrTest, ConstantFeatureDoesNotCrash) {
  Dataset train(2);
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> x{rng.uniform(), 1.0};  // second feature constant
    train.add(x, x[0]);
  }
  Svr model(eps_params());
  Rng fit_rng(16);
  EXPECT_NO_THROW(model.fit(train, fit_rng));
  EXPECT_TRUE(std::isfinite(model.predict(std::vector<double>{0.5, 1.0})));
}

TEST(SvrTest, NamesReflectKind) {
  EXPECT_EQ(Svr(eps_params()).name(), "esvr");
  SvrParams p;
  p.kind = SvrKind::kNu;
  EXPECT_EQ(Svr(p).name(), "nusvr");
}

}  // namespace
}  // namespace anb
