#include "anb/surrogate/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

#include "anb/util/error.hpp"
#include "anb/util/rng.hpp"

namespace anb {
namespace {

Dataset make_iota(std::size_t n, std::size_t d = 3) {
  Dataset ds(d);
  std::vector<double> x(d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < d; ++f)
      x[f] = static_cast<double>(i * d + f);
    ds.add(x, static_cast<double>(i));
  }
  return ds;
}

TEST(DatasetTest, AddAndAccess) {
  Dataset ds(2);
  EXPECT_TRUE(ds.empty());
  ds.add(std::vector<double>{1.0, 2.0}, 3.0);
  EXPECT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds.num_features(), 2u);
  EXPECT_DOUBLE_EQ(ds.target(0), 3.0);
  EXPECT_DOUBLE_EQ(ds.row(0)[1], 2.0);
  EXPECT_DOUBLE_EQ(ds.feature(0, 0), 1.0);
}

TEST(DatasetTest, BoundsChecked) {
  Dataset ds = make_iota(3);
  EXPECT_THROW(ds.row(3), Error);
  EXPECT_THROW(ds.target(3), Error);
  EXPECT_THROW(ds.feature(0, 9), Error);
  EXPECT_THROW(ds.add(std::vector<double>{1.0}, 0.0), Error);
  EXPECT_THROW(Dataset(0), Error);
}

TEST(DatasetTest, SubsetCopiesRows) {
  const Dataset ds = make_iota(5);
  const std::vector<std::size_t> idx{4, 0, 2};
  const Dataset sub = ds.subset(idx);
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub.target(0), 4.0);
  EXPECT_DOUBLE_EQ(sub.target(1), 0.0);
  EXPECT_DOUBLE_EQ(sub.target(2), 2.0);
}

TEST(DatasetTest, SplitFractionsAndDisjointness) {
  const Dataset ds = make_iota(100);
  Rng rng(1);
  const DatasetSplits splits = ds.split(0.8, 0.1, rng);
  EXPECT_EQ(splits.train.size(), 80u);
  EXPECT_EQ(splits.val.size(), 10u);
  EXPECT_EQ(splits.test.size(), 10u);

  // Targets are unique here, so disjointness is checkable via targets.
  std::set<double> seen;
  for (const auto* part : {&splits.train, &splits.val, &splits.test}) {
    for (std::size_t i = 0; i < part->size(); ++i) {
      EXPECT_TRUE(seen.insert(part->target(i)).second);
    }
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(DatasetTest, SplitDeterministicPerSeed) {
  const Dataset ds = make_iota(50);
  Rng a(9), b(9), c(10);
  const auto sa = ds.split(0.6, 0.2, a);
  const auto sb = ds.split(0.6, 0.2, b);
  const auto sc = ds.split(0.6, 0.2, c);
  EXPECT_EQ(sa.train.target(0), sb.train.target(0));
  bool any_diff = false;
  for (std::size_t i = 0; i < sa.train.size(); ++i)
    any_diff |= sa.train.target(i) != sc.train.target(i);
  EXPECT_TRUE(any_diff);
}

TEST(DatasetTest, SplitValidatesFractions) {
  const Dataset ds = make_iota(10);
  Rng rng(1);
  EXPECT_THROW(ds.split(0.9, 0.2, rng), Error);
  EXPECT_THROW(ds.split(-0.1, 0.2, rng), Error);
  const Dataset tiny = make_iota(2);
  EXPECT_THROW(tiny.split(0.5, 0.25, rng), Error);
}

TEST(DatasetTest, CsvRoundTrip) {
  const Dataset ds = make_iota(7, 4);
  const Dataset back = Dataset::from_csv(ds.to_csv());
  ASSERT_EQ(back.size(), ds.size());
  ASSERT_EQ(back.num_features(), ds.num_features());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.target(i), ds.target(i));
    for (std::size_t f = 0; f < ds.num_features(); ++f)
      EXPECT_DOUBLE_EQ(back.feature(i, f), ds.feature(i, f));
  }
}

TEST(DatasetTest, FromCsvRejectsMalformed) {
  EXPECT_THROW(Dataset::from_csv(""), Error);
  EXPECT_THROW(Dataset::from_csv("f0,target\n"), Error);         // no rows
  EXPECT_THROW(Dataset::from_csv("f0,target\n1\n"), Error);      // ragged
  EXPECT_THROW(Dataset::from_csv("f0,target\n1,abc\n"), Error);  // non-numeric
}

}  // namespace
}  // namespace anb
