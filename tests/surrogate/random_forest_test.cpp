#include "anb/surrogate/random_forest.hpp"

#include <gtest/gtest.h>

#include "anb/util/error.hpp"
#include "anb/util/metrics.hpp"

namespace anb {
namespace {

Dataset linear_dataset(int n, std::uint64_t seed, double noise = 0.0) {
  Dataset ds(3);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform()};
    const double y =
        3.0 * x[0] - 2.0 * x[1] + 0.5 * x[2] + noise * rng.normal();
    ds.add(x, y);
  }
  return ds;
}

TEST(RandomForestTest, FitsSmoothFunction) {
  const Dataset train = linear_dataset(800, 1);
  const Dataset test = linear_dataset(200, 2);
  RandomForestParams params;
  params.n_trees = 100;
  RandomForest model(params);
  Rng rng(3);
  model.fit(train, rng);
  const FitMetrics m = model.evaluate(test);
  EXPECT_GT(m.r2, 0.85);
  EXPECT_GT(m.kendall_tau, 0.8);
}

TEST(RandomForestTest, PredictBeforeFitThrows) {
  RandomForest model;
  EXPECT_THROW(model.predict(std::vector<double>{1.0, 2.0, 3.0}), Error);
}

TEST(RandomForestTest, DeterministicGivenRngSeed) {
  const Dataset train = linear_dataset(200, 4);
  RandomForestParams params;
  params.n_trees = 20;
  RandomForest a(params), b(params);
  Rng ra(5), rb(5);
  a.fit(train, ra);
  b.fit(train, rb);
  const std::vector<double> x{0.3, 0.6, 0.9};
  EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
}

TEST(RandomForestTest, MoreTreesReduceVariance) {
  const Dataset train = linear_dataset(400, 6, /*noise=*/0.3);
  const Dataset test = linear_dataset(200, 7, /*noise=*/0.0);
  auto rmse_with = [&](int n_trees) {
    RandomForestParams params;
    params.n_trees = n_trees;
    RandomForest model(params);
    Rng rng(8);
    model.fit(train, rng);
    return model.evaluate(test).rmse;
  };
  EXPECT_LT(rmse_with(150), rmse_with(2) * 1.05);
}

TEST(RandomForestTest, MeanStdConsistentWithPredict) {
  const Dataset train = linear_dataset(300, 9, /*noise=*/0.2);
  RandomForestParams params;
  params.n_trees = 50;
  RandomForest model(params);
  Rng rng(10);
  model.fit(train, rng);
  const std::vector<double> x{0.5, 0.5, 0.5};
  const auto [m, s] = model.predict_mean_std(x);
  EXPECT_DOUBLE_EQ(m, model.predict(x));
  EXPECT_GE(s, 0.0);
}

TEST(RandomForestTest, ParamValidation) {
  RandomForestParams params;
  params.n_trees = 0;
  EXPECT_THROW(RandomForest{params}, Error);
  params.n_trees = 10;
  params.max_depth = 0;
  EXPECT_THROW(RandomForest{params}, Error);
  params.max_depth = 5;
  params.bootstrap_frac = 0.0;
  EXPECT_THROW(RandomForest{params}, Error);
}

TEST(RandomForestTest, NumTreesMatchesParams) {
  const Dataset train = linear_dataset(100, 11);
  RandomForestParams params;
  params.n_trees = 17;
  RandomForest model(params);
  Rng rng(12);
  model.fit(train, rng);
  EXPECT_EQ(model.num_trees(), 17u);
}

TEST(RandomForestTest, EvaluateRequiresRows) {
  const Dataset train = linear_dataset(100, 13);
  RandomForest model;
  Rng rng(14);
  model.fit(train, rng);
  Dataset empty(3);
  EXPECT_THROW(model.evaluate(empty), Error);
}

}  // namespace
}  // namespace anb
