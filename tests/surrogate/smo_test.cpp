#include "anb/surrogate/smo.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "anb/util/error.hpp"
#include "anb/util/rng.hpp"

namespace anb {
namespace {

/// Tiny hard-margin-style SVC problem solved by hand:
/// two points x=-1 (class -1) and x=+1 (class +1), linear kernel.
/// Dual: max 2a - a^2 with a1=a2=a -> a*=1 (if C >= 1).
TEST(SmoTest, TwoPointSvcAnalytic) {
  SmoSolver::Problem prob;
  prob.n = 2;
  prob.p = {-1.0, -1.0};
  prob.y = {+1, -1};
  prob.c = {10.0, 10.0};
  // Q_ij = y_i y_j x_i x_j with x = {+1, -1}.
  const double x[2] = {1.0, -1.0};
  prob.q_column = [&x, &prob](int i, std::vector<double>& out) {
    for (int j = 0; j < 2; ++j)
      out[static_cast<std::size_t>(j)] =
          prob.y[static_cast<std::size_t>(i)] *
          prob.y[static_cast<std::size_t>(j)] * x[i] * x[j];
  };
  const auto res = SmoSolver::solve(prob);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.alpha[0], 0.5, 1e-6);
  EXPECT_NEAR(res.alpha[1], 0.5, 1e-6);
  EXPECT_NEAR(res.rho, 0.0, 1e-6);
}

TEST(SmoTest, BoxConstraintsRespected) {
  // Separable data but tiny C forces both alphas to the bound.
  SmoSolver::Problem prob;
  prob.n = 2;
  prob.p = {-1.0, -1.0};
  prob.y = {+1, -1};
  prob.c = {0.1, 0.1};
  const double x[2] = {1.0, -1.0};
  prob.q_column = [&x, &prob](int i, std::vector<double>& out) {
    for (int j = 0; j < 2; ++j)
      out[static_cast<std::size_t>(j)] =
          prob.y[static_cast<std::size_t>(i)] *
          prob.y[static_cast<std::size_t>(j)] * x[i] * x[j];
  };
  const auto res = SmoSolver::solve(prob);
  for (double a : res.alpha) {
    EXPECT_GE(a, -1e-12);
    EXPECT_LE(a, 0.1 + 1e-12);
  }
  // Equality constraint y^T alpha = 0.
  EXPECT_NEAR(res.alpha[0] - res.alpha[1], 0.0, 1e-9);
}

TEST(SmoTest, EqualityConstraintMaintained) {
  // Random PSD problem; check sum y_i a_i == 0 after solving.
  const int n = 20;
  std::vector<std::vector<double>> k(n, std::vector<double>(n));
  Rng rng(3);
  std::vector<double> feat(n);
  for (auto& f : feat) f = rng.normal();
  SmoSolver::Problem prob;
  prob.n = n;
  prob.p.resize(n);
  prob.y.resize(n);
  prob.c.assign(n, 1.0);
  for (int i = 0; i < n; ++i) {
    prob.p[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 0.0);
    prob.y[static_cast<std::size_t>(i)] = rng.bernoulli(0.5) ? 1 : -1;
  }
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      k[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          std::exp(-(feat[static_cast<std::size_t>(i)] -
                     feat[static_cast<std::size_t>(j)]) *
                   (feat[static_cast<std::size_t>(i)] -
                    feat[static_cast<std::size_t>(j)]));
  prob.q_column = [&](int i, std::vector<double>& out) {
    for (int j = 0; j < n; ++j)
      out[static_cast<std::size_t>(j)] =
          prob.y[static_cast<std::size_t>(i)] *
          prob.y[static_cast<std::size_t>(j)] *
          k[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
  };
  const auto res = SmoSolver::solve(prob);
  double balance = 0.0;
  for (int i = 0; i < n; ++i)
    balance += prob.y[static_cast<std::size_t>(i)] *
               res.alpha[static_cast<std::size_t>(i)];
  EXPECT_NEAR(balance, 0.0, 1e-9);
  EXPECT_TRUE(res.converged);
}

TEST(SmoTest, RejectsMalformedProblems) {
  SmoSolver::Problem prob;
  prob.n = 0;
  EXPECT_THROW(SmoSolver::solve(prob), Error);
  prob.n = 2;
  prob.p = {0.0};
  prob.y = {1, -1};
  prob.c = {1.0, 1.0};
  prob.q_column = [](int, std::vector<double>&) {};
  EXPECT_THROW(SmoSolver::solve(prob), Error);
  prob.p = {0.0, 0.0};
  prob.q_column = nullptr;
  EXPECT_THROW(SmoSolver::solve(prob), Error);
}

}  // namespace
}  // namespace anb
