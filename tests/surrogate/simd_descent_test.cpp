// Differential suite for the SIMD descent engines (DESIGN.md "SIMD
// descent"): every engine x dispatch target x batch shape must reproduce
// the scalar tree walk BIT FOR BIT — including NaN and infinity rows and
// feature values that sit exactly on a split threshold — and forcing an
// engine a forest cannot support must throw instead of degrading.
//
// Separate test binary: these tests flip process-global dispatch state
// (forced simd::Target, forced DescentPath, default thread count) that
// must not interleave with other suites.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "anb/obs/registry.hpp"
#include "anb/surrogate/gbdt.hpp"
#include "anb/surrogate/hist_gbdt.hpp"
#include "anb/surrogate/random_forest.hpp"
#include "anb/surrogate/flat_forest.hpp"
#include "anb/surrogate/tree.hpp"
#include "anb/util/error.hpp"
#include "anb/util/parallel.hpp"
#include "anb/util/rng.hpp"
#include "anb/util/simd.hpp"

namespace anb {
namespace {

/// Dispatch targets this machine can execute. kScalar always runs (and
/// exercises the ScalarIsa kernel instantiations); vector targets join
/// when the CPU probe admits them.
std::vector<simd::Target> test_targets() {
  std::vector<simd::Target> targets{simd::Target::kScalar};
  if (simd::cpu_supports(simd::Target::kAvx2))
    targets.push_back(simd::Target::kAvx2);
  if (simd::cpu_supports(simd::Target::kNeon))
    targets.push_back(simd::Target::kNeon);
  return targets;
}

/// Batch sizes crossing every kernel regime: empty, below one 8-lane
/// group, exactly one group, group+1, and the 255/256/257 straddle of
/// four 64-row blocks (full vector blocks plus a scalar tail block).
const std::size_t kBatchSizes[] = {0, 1, 7, 8, 9, 255, 256, 257};

/// Chain tree with `leaves` leaves: internal node k (k = 0..leaves-2)
/// splits feature 0 at threshold k+1 with a leaf on the left and the
/// chain continuing right — maximally unbalanced, depth = leaves-1.
RegressionTree make_chain_tree(int leaves, double leaf_base) {
  const int internal = leaves - 1;
  std::vector<TreeNode> nodes(static_cast<std::size_t>(2 * internal + 1));
  for (int k = 0; k < internal; ++k) {
    TreeNode& n = nodes[static_cast<std::size_t>(2 * k)];
    n.feature = 0;
    n.threshold = static_cast<double>(k + 1);
    n.left = 2 * k + 1;
    n.right = 2 * k + 2;
    nodes[static_cast<std::size_t>(2 * k + 1)] =
        TreeNode{-1, 0.0, -1, -1, leaf_base + k};
  }
  nodes[static_cast<std::size_t>(2 * internal)] =
      TreeNode{-1, 0.0, -1, -1, leaf_base + internal};
  return RegressionTree(std::move(nodes));
}

/// Depth-2 tree over two features: root splits f0 at 2.0, children split
/// f1 at 1.5 / 3.0, four distinct leaf values.
RegressionTree make_split_tree(double bump) {
  std::vector<TreeNode> nodes(7);
  nodes[0] = TreeNode{0, 2.0, 1, 2, 0.0};
  nodes[1] = TreeNode{1, 1.5, 3, 4, 0.0};
  nodes[2] = TreeNode{1, 3.0, 5, 6, 0.0};
  nodes[3] = TreeNode{-1, 0.0, -1, -1, 1.0 + bump};
  nodes[4] = TreeNode{-1, 0.0, -1, -1, 2.0 + bump};
  nodes[5] = TreeNode{-1, 0.0, -1, -1, 3.0 + bump};
  nodes[6] = TreeNode{-1, 0.0, -1, -1, 4.0 + bump};
  return RegressionTree(std::move(nodes));
}

/// Scalar reference: per row, sum scale * predict_tree over trees in tree
/// order on top of `init` — the exact accumulation order accumulate()
/// promises, so EXPECT_EQ below is a bit-level check.
std::vector<double> reference(const FlatForest& forest,
                              std::span<const double> rows, std::size_t d,
                              double scale, double init) {
  const std::size_t n = d == 0 ? 0 : rows.size() / d;
  std::vector<double> out(n, init);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t t = 0; t < forest.num_trees(); ++t)
      out[i] += scale * forest.predict_tree(t, rows.subspan(i * d, d));
  return out;
}

/// Runs accumulate() under every (target, path) combination and demands
/// bit-identity with the scalar reference.
void expect_paths_agree(const FlatForest& forest,
                        std::span<const double> rows, std::size_t d,
                        const std::vector<DescentPath>& paths,
                        const char* label) {
  constexpr double kScale = 0.5;
  constexpr double kInit = 0.25;
  const std::size_t n = rows.size() / d;
  const std::vector<double> ref = reference(forest, rows, d, kScale, kInit);
  for (const simd::Target target : test_targets()) {
    simd::ScopedTarget st(target);
    for (const DescentPath path : paths) {
      ScopedDescentPath sp(path);
      std::vector<double> out(n, kInit);
      forest.accumulate(rows, d, kScale, out);
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(ref[i], out[i])
            << label << " target=" << simd::target_name(target)
            << " path=" << descent_path_name(path) << " row=" << i;
    }
  }
}

const std::vector<DescentPath> kAllPaths = {
    DescentPath::kAuto, DescentPath::kInterleaved, DescentPath::kSimd,
    DescentPath::kQuantized, DescentPath::kMasked};
const std::vector<DescentPath> kUnquantizedPaths = {
    DescentPath::kAuto, DescentPath::kInterleaved, DescentPath::kSimd};

TEST(SimdDescentTest, SpecialValuesRouteIdentically) {
  std::vector<RegressionTree> trees;
  trees.push_back(make_split_tree(0.0));
  trees.push_back(make_split_tree(0.125));
  trees.push_back(make_chain_tree(8, -2.0));
  const FlatForest forest(trees);
  ASSERT_TRUE(forest.quantized_available());
  ASSERT_TRUE(forest.masked_available());

  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // Rows hitting: exact thresholds (x < t must be false), one-ulp
  // neighbours, NaN (always routes right), +/-inf, and plain values.
  const std::vector<double> rows = {
      2.0, 1.5,                                          // both exact
      std::nextafter(2.0, 0.0), std::nextafter(1.5, 9.0),  // one ulp off
      nan, 1.0,                                          // NaN on f0
      1.0, nan,                                          // NaN on f1
      nan, nan,                                          // NaN everywhere
      inf, -inf,                                         // infinities
      -inf, inf,                                         //
      0.0, 0.0,                                          // plain
      7.5, 2.25,                                         //
  };
  expect_paths_agree(forest, rows, 2, kAllPaths, "special-values");
}

TEST(SimdDescentTest, BatchShapesAndOddForests) {
  // Odd tree count (exercises the single-tree remainder), a single-leaf
  // tree (no internal nodes: the masked accumulator stays all-ones and
  // must still pick leaf 0), and unbalanced chains.
  std::vector<RegressionTree> trees;
  trees.push_back(make_split_tree(0.5));
  trees.push_back(RegressionTree({TreeNode{-1, 0.0, -1, -1, 0.75}}));
  trees.push_back(make_chain_tree(5, 1.0));
  const FlatForest forest(trees);
  ASSERT_TRUE(forest.masked_available());

  Rng rng(42);
  for (const std::size_t n : kBatchSizes) {
    std::vector<double> rows(n * 2);
    for (auto& v : rows) v = rng.uniform() * 5.0;
    expect_paths_agree(forest, rows, 2, kAllPaths,
                       ("batch n=" + std::to_string(n)).c_str());
  }
}

TEST(SimdDescentTest, NineLeavesDisableMaskedOnly) {
  std::vector<RegressionTree> trees;
  trees.push_back(make_chain_tree(9, 0.0));
  const FlatForest forest(trees);
  EXPECT_TRUE(forest.quantized_available());
  EXPECT_FALSE(forest.masked_available());

  std::vector<double> rows(16);
  for (std::size_t i = 0; i < rows.size(); ++i)
    rows[i] = static_cast<double>(i % 10);
  expect_paths_agree(
      forest, rows, 1,
      {DescentPath::kAuto, DescentPath::kInterleaved, DescentPath::kSimd,
       DescentPath::kQuantized},
      "nine-leaves");

  ScopedDescentPath sp(DescentPath::kMasked);
  std::vector<double> out(16, 0.0);
  EXPECT_THROW(forest.accumulate(rows, 1, 1.0, out), Error);
}

TEST(SimdDescentTest, ManyThresholdsDisableQuantizedAndMasked) {
  // 300 leaves -> 299 distinct thresholds on feature 0: past the 255-code
  // budget, so only the full-precision engines may run.
  std::vector<RegressionTree> trees;
  trees.push_back(make_chain_tree(300, 0.0));
  const FlatForest forest(trees);
  EXPECT_FALSE(forest.quantized_available());
  EXPECT_FALSE(forest.masked_available());

  std::vector<double> rows(24);
  for (std::size_t i = 0; i < rows.size(); ++i)
    rows[i] = static_cast<double>(i) * 17.0;
  expect_paths_agree(forest, rows, 1, kUnquantizedPaths, "many-thresholds");

  std::vector<double> out(rows.size(), 0.0);
  {
    ScopedDescentPath sp(DescentPath::kQuantized);
    EXPECT_THROW(forest.accumulate(rows, 1, 1.0, out), Error);
  }
  {
    ScopedDescentPath sp(DescentPath::kMasked);
    EXPECT_THROW(forest.accumulate(rows, 1, 1.0, out), Error);
  }
}

// ---------------------------------------------------------------------------
// Fitted families end to end: model.predict (scalar walk) vs
// predict_batch / predict_matrix under every engine. Discrete feature
// values keep the per-feature threshold count small, so quantization is
// available by construction for every family below.
// ---------------------------------------------------------------------------

constexpr std::size_t kNumFeatures = 7;

Dataset make_family_dataset(int n, std::uint64_t seed) {
  Dataset ds(kNumFeatures);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    std::vector<double> x(kNumFeatures);
    for (auto& v : x) v = static_cast<double>(rng.uniform_index(6));
    const double y = 3.0 * x[0] - 2.0 * x[1] + x[2] * x[3] + 0.5 * x[6] +
                     0.1 * rng.normal();
    ds.add(x, y);
  }
  return ds;
}

std::vector<double> make_family_rows(std::size_t n, std::uint64_t seed) {
  std::vector<double> rows(n * kNumFeatures);
  Rng rng(seed);
  for (auto& v : rows) v = static_cast<double>(rng.uniform_index(6));
  return rows;
}

void run_family(const Surrogate& model,
                const std::vector<DescentPath>& paths) {
  for (const std::size_t n : kBatchSizes) {
    const std::vector<double> rows = make_family_rows(n, 0xF00 + n);
    std::vector<double> scalar(n);
    {
      // Reference on the PR 2 interleaved walk (itself proven
      // bit-identical to per-row predict by predict_batch_test).
      ScopedDescentPath sp(DescentPath::kInterleaved);
      for (std::size_t i = 0; i < n; ++i)
        scalar[i] = model.predict(std::span<const double>(rows).subspan(
            i * kNumFeatures, kNumFeatures));
    }
    for (const simd::Target target : test_targets()) {
      simd::ScopedTarget st(target);
      for (const DescentPath path : paths) {
        ScopedDescentPath sp(path);
        std::vector<double> batch(n);
        model.predict_batch(rows, kNumFeatures, batch);
        for (std::size_t i = 0; i < n; ++i)
          EXPECT_EQ(scalar[i], batch[i])
              << model.name() << " target=" << simd::target_name(target)
              << " path=" << descent_path_name(path) << " n=" << n
              << " row=" << i;
      }
    }
  }
  // Parallel predict_matrix sweep at pinned thread counts: per-chunk
  // dispatch must keep bit-identity whatever the chunking.
  const std::size_t n = 257;
  const std::vector<double> rows = make_family_rows(n, 0xBEE);
  std::vector<double> scalar(n);
  {
    ScopedDescentPath sp(DescentPath::kInterleaved);
    for (std::size_t i = 0; i < n; ++i)
      scalar[i] = model.predict(std::span<const double>(rows).subspan(
          i * kNumFeatures, kNumFeatures));
  }
  for (const unsigned threads : {1u, 2u, 0u}) {
    set_default_num_threads(threads);
    for (const DescentPath path : paths) {
      ScopedDescentPath sp(path);
      std::vector<double> matrix(n);
      model.predict_matrix(rows, kNumFeatures, matrix);
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(scalar[i], matrix[i])
            << model.name() << " threads=" << threads
            << " path=" << descent_path_name(path) << " row=" << i;
    }
  }
  set_default_num_threads(0);
}

TEST(SimdDescentTest, HistGbdtFamily) {
  HistGbdtParams p;
  p.n_estimators = 40;
  HistGbdt model(p);  // max_leaves 8 -> masked-eligible by construction
  const Dataset train = make_family_dataset(400, 21);
  Rng rng(22);
  model.fit(train, rng);
  run_family(model, kAllPaths);
}

TEST(SimdDescentTest, GbdtFamily) {
  GbdtParams p;
  p.n_estimators = 40;
  p.max_depth = 3;  // <= 8 leaves -> masked-eligible
  Gbdt model(p);
  const Dataset train = make_family_dataset(400, 31);
  Rng rng(32);
  model.fit(train, rng);
  run_family(model, kAllPaths);
}

TEST(SimdDescentTest, RandomForestFamily) {
  RandomForestParams p;
  p.n_trees = 15;  // default depth 14: typically far more than 8 leaves
  RandomForest model(p);
  const Dataset train = make_family_dataset(400, 41);
  Rng rng(42);
  model.fit(train, rng);
  // Masked eligibility depends on the fitted shapes, so the forced-path
  // sweep stops at kQuantized (guaranteed by the discrete features).
  run_family(model, {DescentPath::kAuto, DescentPath::kInterleaved,
                     DescentPath::kSimd, DescentPath::kQuantized});
}

// ---------------------------------------------------------------------------
// Observability: SIMD-path batches report their row count and dispatch
// target; the counter is exact, so it stays thread-count-invariant.
// ---------------------------------------------------------------------------

TEST(SimdDescentTest, ObsCountsSimdRowsAndTarget) {
  HistGbdtParams p;
  p.n_estimators = 10;
  HistGbdt model(p);
  const Dataset train = make_family_dataset(200, 51);
  Rng rng(52);
  model.fit(train, rng);
  const std::vector<double> rows = make_family_rows(64, 0xC0);
  std::vector<double> out(64);

  obs::reset_metrics();
  {
    ScopedDescentPath sp(DescentPath::kMasked);
    model.predict_batch(rows, kNumFeatures, out);
  }
  {
    // Interleaved batches must NOT count as SIMD rows.
    ScopedDescentPath sp(DescentPath::kInterleaved);
    model.predict_batch(rows, kNumFeatures, out);
  }
  std::uint64_t simd_rows = 0;
  double dispatch = -1.0;
  for (const obs::MetricValue& m : obs::snapshot_metrics()) {
    if (m.name == "anb.query.simd.rows") simd_rows = m.value;
    if (m.name == "anb.query.simd.dispatch_target")
      dispatch = m.gauge_value;
  }
  EXPECT_EQ(simd_rows, 64u);
  EXPECT_EQ(dispatch,
            static_cast<double>(static_cast<int>(simd::active_target())));
}

}  // namespace
}  // namespace anb
