// Tests for the anb_lint pass framework: the lexer's literal/comment
// handling, suppressions, and one violating + one clean fixture per
// registered pass. Fixtures are in-memory FileSpecs so the test is
// hermetic — no disk layout to drift out of sync with the assertions.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "anb_lint/pass.hpp"
#include "anb_lint/source.hpp"
#include "anb_lint/tree.hpp"

namespace anb::lint {
namespace {

std::vector<Finding> run_on(std::string_view pass,
                            const std::vector<FileSpec>& specs) {
  return run_pass(Tree::from_specs(specs), pass).findings;
}

bool has_finding(const std::vector<Finding>& findings, std::string_view path,
                 std::size_t line) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) {
                       return f.path == path && f.line == line;
                     });
}

// ---------------------------------------------------------------- lexer

TEST(LexerTest, ScrubBlanksCommentsAndStringContents) {
  const auto code = scrub({"int x = 1; // trailing std::rand()",
                           "const char* s = \"std::rand()\";",
                           "/* std::rand() */ int y = 2;"});
  EXPECT_EQ(code[0].find("std::rand"), std::string::npos);
  EXPECT_EQ(code[1].find("std::rand"), std::string::npos);
  EXPECT_EQ(code[2].find("std::rand"), std::string::npos);
  EXPECT_NE(code[0].find("int x"), std::string::npos);
  EXPECT_NE(code[2].find("int y"), std::string::npos);
}

TEST(LexerTest, ScrubHandlesRawStringsAcrossLines) {
  const auto code = scrub({"auto s = R\"delim(first std::rand()",
                           "second line // not a comment",
                           ")delim\"; int after = 1;"});
  EXPECT_EQ(code[0].find("std::rand"), std::string::npos);
  EXPECT_EQ(code[1].find_first_not_of(' '), std::string::npos);
  EXPECT_NE(code[2].find("int after"), std::string::npos);
}

TEST(LexerTest, RawStringPrefixMustBeARealPrefix) {
  // FOOR"(... is an identifier ending in R followed by a plain string,
  // not a raw string; u8R"(...)" is a raw string.
  const auto code = scrub({"auto a = FOOR\"(text)\"; int live = 1;",
                           "auto b = u8R\"(std::rand())\"; int more = 2;"});
  EXPECT_NE(code[0].find("int live"), std::string::npos);
  EXPECT_EQ(code[1].find("std::rand"), std::string::npos);
  EXPECT_NE(code[1].find("int more"), std::string::npos);
}

TEST(LexerTest, LineContinuationExtendsLineComment) {
  const auto code = scrub({"// comment continues \\", "int hidden = 1;",
                           "int visible = 2;"});
  EXPECT_EQ(code[1].find("hidden"), std::string::npos);
  EXPECT_NE(code[2].find("visible"), std::string::npos);
}

TEST(LexerTest, CommentMarkersInsideStringsStayInert) {
  const auto code = scrub({"auto s = \"/* not a comment\"; int a = 1;",
                           "auto t = \"// also not\"; int b = 2;"});
  EXPECT_NE(code[0].find("int a"), std::string::npos);
  EXPECT_NE(code[1].find("int b"), std::string::npos);
}

TEST(LexerTest, DigitSeparatorsDoNotOpenCharLiterals) {
  const auto code = scrub({"int big = 1'000'000; int next = 2;"});
  EXPECT_NE(code[0].find("int next"), std::string::npos);
}

TEST(LexerTest, TokenizerEmitsMultiCharOperators) {
  const auto tokens = tokenize(scrub({"a += b; x << y; s::t;"}));
  std::vector<std::string> puncts;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kPunct) puncts.push_back(t.text);
  }
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "+="), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "<<"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "::"), puncts.end());
}

TEST(LexerTest, IncludesParsedButCommentedOutIncludesIgnored) {
  const SourceFile f = make_source_file(
      "src/util/x.cpp",
      "#include <vector>\n#include \"anb/util/rng.hpp\"\n"
      "// #include <mutex>\n/* #include <thread> */\n");
  ASSERT_EQ(f.includes.size(), 2u);
  EXPECT_TRUE(f.includes[0].angled);
  EXPECT_EQ(f.includes[0].target, "vector");
  EXPECT_FALSE(f.includes[1].angled);
  EXPECT_EQ(f.includes[1].target, "anb/util/rng.hpp");
}

TEST(LexerTest, LayerAndKindClassification) {
  const SourceFile f =
      make_source_file("src/surrogate/include/anb/surrogate/tree.hpp", "");
  EXPECT_TRUE(f.is_header);
  EXPECT_TRUE(f.in_src);
  EXPECT_EQ(f.layer, "surrogate");
}

// --------------------------------------------------------- suppressions

TEST(SuppressionTest, LineAndFileAllowsAreHonoredPerPass) {
  const std::string line_allow =
      "void f() { throw std::runtime_error(\"x\"); }  "
      "// ANB_LINT_ALLOW(throw-discipline)\n";
  EXPECT_TRUE(
      run_on("throw-discipline", {{"src/util/a.cpp", line_allow}}).empty());

  const std::string file_allow =
      "// ANB_LINT_ALLOW_FILE(throw-discipline)\n"
      "void f() { throw std::runtime_error(\"x\"); }\n";
  EXPECT_TRUE(
      run_on("throw-discipline", {{"src/util/b.cpp", file_allow}}).empty());

  // An allow for a different pass suppresses nothing.
  const std::string wrong_pass =
      "void f() { throw std::runtime_error(\"x\"); }  "
      "// ANB_LINT_ALLOW(no-endl)\n";
  EXPECT_EQ(
      run_on("throw-discipline", {{"src/util/c.cpp", wrong_pass}}).size(),
      1u);
}

// ---------------------------------------------------------- style group

TEST(PragmaOncePass, FlagsMissingAndAcceptsPresent) {
  EXPECT_EQ(run_on("pragma-once",
                   {{"src/util/include/anb/util/bad.hpp",
                     "// doc comment\nint f();\n"}})
                .size(),
            1u);
  EXPECT_TRUE(run_on("pragma-once",
                     {{"src/util/include/anb/util/good.hpp",
                       "// doc comment\n#pragma once\nint f();\n"}})
                  .empty());
}

TEST(UsingNamespacePass, FlagsHeadersOnly) {
  EXPECT_EQ(run_on("using-namespace-header",
                   {{"src/util/include/anb/util/bad.hpp",
                     "#pragma once\nusing namespace std;\n"}})
                .size(),
            1u);
  EXPECT_TRUE(run_on("using-namespace-header",
                     {{"src/util/fine.cpp", "using namespace std;\n"}})
                  .empty());
}

TEST(NoEndlPass, FlagsLibraryCodeOnly) {
  EXPECT_EQ(
      run_on("no-endl", {{"src/util/bad.cpp", "void f() { o << std::endl; }"}})
          .size(),
      1u);
  EXPECT_TRUE(run_on("no-endl", {{"tests/util/fine.cpp",
                                  "void f() { o << std::endl; }"}})
                  .empty());
}

TEST(IwyuBasicsPass, RequiresDirectIncludeInSrcHeaders) {
  EXPECT_EQ(run_on("iwyu-basics",
                   {{"src/util/include/anb/util/bad.hpp",
                     "#pragma once\nstd::vector<int> f();\n"}})
                .size(),
            1u);
  EXPECT_TRUE(run_on("iwyu-basics",
                     {{"src/util/include/anb/util/good.hpp",
                       "#pragma once\n#include <vector>\n"
                       "std::vector<int> f();\n"}})
                  .empty());
  // Mentions inside comments no longer count as uses.
  EXPECT_TRUE(run_on("iwyu-basics",
                     {{"src/util/include/anb/util/doc.hpp",
                       "#pragma once\n// returns a std::vector copy\n"
                       "int f();\n"}})
                  .empty());
}

// ---------------------------------------------------- determinism group

TEST(ForbiddenRandomnessPass, FlagsCodeNotLiteralsOrComments) {
  EXPECT_EQ(run_on("forbidden-randomness",
                   {{"src/util/bad.cpp",
                     "int f() { return std::rand(); }\n"
                     "std::random_device rd;\n"}})
                .size(),
            2u);
  EXPECT_TRUE(run_on("forbidden-randomness",
                     {{"src/util/fine.cpp",
                       "// std::rand is banned\n"
                       "const char* kMsg = \"std::rand\";\n"}})
                  .empty());
}

TEST(RawTimingPass, ExemptsObsAndBench) {
  const std::string clock_use =
      "void f() { auto t = std::chrono::steady_clock::now(); }\n";
  EXPECT_EQ(run_on("raw-timing", {{"src/util/bad.cpp", clock_use}}).size(),
            1u);
  EXPECT_TRUE(run_on("raw-timing", {{"src/obs/span.cpp", clock_use}}).empty());
  EXPECT_TRUE(
      run_on("raw-timing", {{"bench/harness.cpp", clock_use}}).empty());
}

TEST(RawIoPass, FlagsRawFileIoInSrcOnly) {
  const std::string stream_use =
      "#include <fstream>\n"
      "void f() { std::ifstream in(\"x\"); }\n";
  // Both the include and the stream type are findings in library code.
  EXPECT_EQ(run_on("raw-io", {{"src/anb/bad.cpp", stream_use}}).size(), 2u);
  const std::string cstdio_use =
      "void f() { FILE* fp = fopen(\"x\", \"rb\"); (void)fp; }\n";
  EXPECT_TRUE(has_finding(run_on("raw-io", {{"src/util/bad.cpp", cstdio_use}}),
                          "src/util/bad.cpp", 1));
  const std::string mmap_use =
      "void g() { void* p = mmap(nullptr, 8, 1, 2, -1, 0); (void)p; }\n"
      "int h() { return ::open(\"x\", 0); }\n";
  EXPECT_EQ(run_on("raw-io", {{"src/surrogate/bad.cpp", mmap_use}}).size(),
            2u);
}

TEST(RawIoPass, ExemptsWrapperObsTestsAndBench) {
  const std::string stream_use =
      "#include <fstream>\n"
      "void f() { std::ofstream out(\"x\"); }\n";
  EXPECT_TRUE(run_on("raw-io", {{"src/util/io.cpp", stream_use}}).empty());
  EXPECT_TRUE(run_on("raw-io", {{"src/obs/trace.cpp", stream_use}}).empty());
  EXPECT_TRUE(run_on("raw-io", {{"tests/anb/some_test.cpp", stream_use}})
                  .empty());
  EXPECT_TRUE(run_on("raw-io", {{"bench/harness.cpp", stream_use}}).empty());
  // Member/scoped calls named open are not the libc ::open.
  const std::string member_open =
      "void f() { auto b = anb::AccelNASBench::open(\"x\"); (void)b; }\n";
  EXPECT_TRUE(
      run_on("raw-io", {{"src/anb/fine.cpp", member_open}}).empty());
  // Line suppression works like every other pass.
  const std::string allowed =
      "void g() { fopen(\"x\", \"rb\"); }  // ANB_LINT_ALLOW(raw-io)\n";
  EXPECT_TRUE(run_on("raw-io", {{"src/util/fine.cpp", allowed}}).empty());
}

TEST(RawIoPass, FlagsRawSocketsOutsideNetWrapper) {
  // Socket headers and global-qualified socket syscalls are findings in
  // library code (one per include, one per call here).
  const std::string socket_use =
      "#include <sys/socket.h>\n"
      "#include <sys/un.h>\n"
      "#include <poll.h>\n"
      "int f() { return ::socket(1, 1, 0); }\n"
      "int g(int fd) { return ::listen(fd, 8); }\n";
  EXPECT_EQ(run_on("raw-io", {{"src/serve/bad.cpp", socket_use}}).size(), 5u);

  // src/util/net.cpp is the sanctioned socket TU, exactly like io.cpp
  // for file IO; and net::Socket methods named like the syscalls are
  // not the libc calls.
  EXPECT_TRUE(run_on("raw-io", {{"src/util/net.cpp", socket_use}}).empty());
  const std::string wrapper_use =
      "void f(anb::net::Socket& s, std::span<const char> b) {\n"
      "  s.send_all(b);\n"
      "  s.shutdown_both();\n"
      "}\n"
      "auto g(const std::string& p) { return net::Socket::connect_unix(p); }\n";
  EXPECT_TRUE(run_on("raw-io", {{"src/serve/fine.cpp", wrapper_use}}).empty());
}

TEST(RawSimdPass, FlagsIntrinsicsOutsideWrapper) {
  // Header include and an x86 intrinsic call are two separate findings.
  const std::string avx_use =
      "#include <immintrin.h>\n"
      "__m256i f(__m256i a) { return _mm256_add_epi32(a, a); }\n";
  EXPECT_EQ(run_on("raw-simd", {{"src/anb/bad.cpp", avx_use}}).size(), 4u);
  const std::string neon_use =
      "#include <arm_neon.h>\n"
      "int32x4_t g(int32x4_t a) { return vaddq_s32(a, a); }\n";
  EXPECT_EQ(run_on("raw-simd", {{"src/surrogate/bad.cpp", neon_use}}).size(),
            4u);
  // Lane-reinterpret names (double lane suffix) still match.
  EXPECT_TRUE(has_finding(
      run_on("raw-simd",
             {{"src/util/bad.cpp",
               "auto h(auto v) { return vreinterpretq_s8_u8(v); }\n"}}),
      "src/util/bad.cpp", 1));
}

TEST(RawSimdPass, ExemptsWrapperTestsAndBench) {
  const std::string avx_use =
      "#include <immintrin.h>\n"
      "__m256i f(__m256i a) { return _mm256_add_epi32(a, a); }\n";
  // The one sanctioned home for raw intrinsics.
  EXPECT_TRUE(
      run_on("raw-simd",
             {{"src/util/include/anb/util/simd.hpp", avx_use}})
          .empty());
  // Out-of-src trees are out of scope like the other discipline passes.
  EXPECT_TRUE(
      run_on("raw-simd", {{"tests/util/simd_test.cpp", avx_use}}).empty());
  EXPECT_TRUE(run_on("raw-simd", {{"bench/kernels.cpp", avx_use}}).empty());
  // Ordinary identifiers that merely resemble NEON shapes do not match:
  // no q_ marker, non-lane suffix, or no <digits>x<digits> layout.
  const std::string lookalikes =
      "int verify_s32(int a) { return a; }\n"
      "int vq_total(int a) { return a; }\n"
      "struct matrix_t { int m; };\n";
  EXPECT_TRUE(
      run_on("raw-simd", {{"src/anb/fine.cpp", lookalikes}}).empty());
  // Line suppression works like every other pass.
  const std::string allowed =
      "using V = __m256i;  // ANB_LINT_ALLOW(raw-simd)\n";
  EXPECT_TRUE(run_on("raw-simd", {{"src/util/fine.cpp", allowed}}).empty());
}

TEST(DeterministicIterationPass, FlagsOrderSensitiveSinks) {
  const std::string streaming =
      "#include <unordered_map>\n"
      "void f(const std::unordered_map<int, int>& m, std::ostream& o) {\n"
      "  for (const auto& [k, v] : m) o << k;\n"
      "}\n";
  EXPECT_TRUE(has_finding(
      run_on("deterministic-iteration", {{"src/util/bad.cpp", streaming}}),
      "src/util/bad.cpp", 3));

  const std::string accumulating =
      "std::unordered_set<int> seen;\n"
      "double g() { double s = 0; for (int v : seen) s += v; return s; }\n";
  EXPECT_EQ(run_on("deterministic-iteration",
                   {{"src/util/bad2.cpp", accumulating}})
                .size(),
            1u);
}

TEST(DeterministicIterationPass, CleanCases) {
  // Ordered container: fine regardless of the body.
  const std::string ordered =
      "std::map<int, int> m;\n"
      "void f(std::ostream& o) { for (const auto& [k, v] : m) o << k; }\n";
  EXPECT_TRUE(
      run_on("deterministic-iteration", {{"src/util/a.cpp", ordered}})
          .empty());

  // Collect-then-sort is the sanctioned idiom.
  const std::string collect_sort =
      "std::unordered_map<int, int> m;\n"
      "std::vector<int> keys() {\n"
      "  std::vector<int> out;\n"
      "  for (const auto& [k, v] : m) out.push_back(k);\n"
      "  std::sort(out.begin(), out.end());\n"
      "  return out;\n"
      "}\n";
  EXPECT_TRUE(
      run_on("deterministic-iteration", {{"src/util/b.cpp", collect_sort}})
          .empty());

  // Order-insensitive body (pure lookup / max) has no sink.
  const std::string lookup =
      "std::unordered_set<int> s;\n"
      "bool any_big() { for (int v : s) if (v > 9) return true;\n"
      "  return false; }\n";
  EXPECT_TRUE(run_on("deterministic-iteration", {{"src/util/c.cpp", lookup}})
                  .empty());
}

TEST(FloatReductionPass, FlagsAtomicFloatAndParallelAccumulation) {
  EXPECT_EQ(run_on("float-reduction",
                   {{"src/util/bad.cpp", "std::atomic<double> total{0};\n"}})
                .size(),
            1u);

  const std::string parallel_acc =
      "double total = 0;\n"
      "void f(const std::vector<double>& xs) {\n"
      "  parallel_for(xs.size(), [&](std::size_t i) { total += xs[i]; });\n"
      "}\n";
  EXPECT_TRUE(has_finding(
      run_on("float-reduction", {{"src/util/bad2.cpp", parallel_acc}}),
      "src/util/bad2.cpp", 3));
}

TEST(FloatReductionPass, CleanCases) {
  // Per-item slots merged serially after the parallel region.
  const std::string per_item =
      "double total = 0;\n"
      "void f(const std::vector<double>& xs) {\n"
      "  std::vector<double> slot(xs.size());\n"
      "  parallel_for(xs.size(), [&](std::size_t i) { slot[i] = xs[i]; });\n"
      "  for (double v : slot) total += v;\n"
      "}\n";
  EXPECT_TRUE(
      run_on("float-reduction", {{"src/util/a.cpp", per_item}}).empty());

  // A float declared inside the lambda is a local accumulator: fine.
  const std::string local_acc =
      "void f(const std::vector<std::vector<double>>& xs) {\n"
      "  parallel_for(xs.size(), [&](std::size_t i) {\n"
      "    double row = 0;\n"
      "    for (double v : xs[i]) row += v;\n"
      "    consume(i, row);\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(
      run_on("float-reduction", {{"src/util/b.cpp", local_acc}}).empty());

  // Integer atomics are deterministic under addition.
  EXPECT_TRUE(run_on("float-reduction",
                     {{"src/util/c.cpp",
                       "std::atomic<std::size_t> count{0};\n"}})
                  .empty());
}

// ----------------------------------------------------- discipline group

TEST(ThrowDisciplinePass, FlagsStdThrowsInSrcOnly) {
  EXPECT_EQ(run_on("throw-discipline",
                   {{"src/util/bad.cpp",
                     "void f() { throw std::runtime_error(\"x\"); }"}})
                .size(),
            1u);
  EXPECT_TRUE(run_on("throw-discipline",
                     {{"tests/util/fine.cpp",
                       "void f() { throw std::runtime_error(\"x\"); }"}})
                  .empty());
}

TEST(AssertCoveragePass, RequiresChecksInLongTus) {
  std::string long_tu = "void f() {\n";
  for (int i = 0; i < 130; ++i) long_tu += "  g();\n";
  long_tu += "}\n";
  EXPECT_EQ(run_on("assert-coverage", {{"src/util/bad.cpp", long_tu}}).size(),
            1u);

  std::string covered = "void f(int n) {\n  ANB_CHECK(n > 0, \"n\");\n";
  for (int i = 0; i < 130; ++i) covered += "  g();\n";
  covered += "}\n";
  EXPECT_TRUE(
      run_on("assert-coverage", {{"src/util/good.cpp", covered}}).empty());
}

TEST(LockHygienePass, BansStdLockingVocabulary) {
  const auto findings = run_on(
      "lock-hygiene",
      {{"src/util/bad.cpp",
        "#include <mutex>\nstd::mutex mu;\n"
        "void f() { std::lock_guard<std::mutex> lock(mu); }\n"}});
  EXPECT_GE(findings.size(), 3u);  // include + decl + lock_guard
  EXPECT_TRUE(run_on("lock-hygiene",
                     {{"tests/util/fine.cpp",
                       "#include <mutex>\nstd::mutex mu;\n"}})
                  .empty());
}

TEST(LockHygienePass, MutexWithoutGuardedByIsFlagged) {
  const std::string unannotated =
      "#include \"anb/util/mutex.hpp\"\n"
      "struct S {\n  anb::Mutex mu;\n  int value = 0;\n};\n";
  EXPECT_TRUE(has_finding(
      run_on("lock-hygiene", {{"src/util/bad.cpp", unannotated}}),
      "src/util/bad.cpp", 3));

  const std::string annotated =
      "#include \"anb/util/mutex.hpp\"\n"
      "struct S {\n  anb::Mutex mu;\n"
      "  int value ANB_GUARDED_BY(mu) = 0;\n};\n";
  EXPECT_TRUE(
      run_on("lock-hygiene", {{"src/util/good.cpp", annotated}}).empty());
}

// ------------------------------------------------------------- layering

TEST(LayeringPass, FlagsUpwardIncludes) {
  // obs including a non-leaf util header points up the DAG.
  const std::string bad =
      "#include \"anb/util/rng.hpp\"\nvoid f();\n";
  EXPECT_EQ(run_on("layering", {{"src/obs/bad.cpp", bad}}).size(), 1u);

  // The header-only util leaves are includable from anywhere.
  const std::string leaf_ok =
      "#include \"anb/util/error.hpp\"\n"
      "#include \"anb/util/mutex.hpp\"\nvoid f();\n";
  EXPECT_TRUE(run_on("layering", {{"src/obs/fine.cpp", leaf_ok}}).empty());

  // A sanctioned downward include.
  const std::string down_ok =
      "#include \"anb/obs/registry.hpp\"\nvoid f();\n";
  EXPECT_TRUE(run_on("layering", {{"src/util/fine.cpp", down_ok}}).empty());

  // serve sits at the top: it may include anb, but nothing may include
  // it back.
  const std::string serve_down =
      "#include \"anb/anb/benchmark.hpp\"\nvoid f();\n";
  EXPECT_TRUE(run_on("layering", {{"src/serve/fine.cpp", serve_down}}).empty());
  const std::string serve_up =
      "#include \"anb/serve/server.hpp\"\nvoid f();\n";
  EXPECT_EQ(run_on("layering", {{"src/anb/bad.cpp", serve_up}}).size(), 1u);

  // surrogate must not reach into hpo (hpo sits above it).
  const std::string upward =
      "#include \"anb/hpo/smac.hpp\"\nvoid f();\n";
  EXPECT_EQ(run_on("layering", {{"src/surrogate/bad.cpp", upward}}).size(),
            1u);
}

TEST(LayeringPass, DetectsHeaderCycles) {
  const std::vector<FileSpec> cyclic = {
      {"src/util/include/anb/util/a.hpp",
       "#pragma once\n#include \"anb/util/b.hpp\"\n"},
      {"src/util/include/anb/util/b.hpp",
       "#pragma once\n#include \"anb/util/a.hpp\"\n"},
  };
  const auto findings = run_on("layering", cyclic);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("cycle"), std::string::npos);

  const std::vector<FileSpec> acyclic = {
      {"src/util/include/anb/util/a.hpp",
       "#pragma once\n#include \"anb/util/b.hpp\"\n"},
      {"src/util/include/anb/util/b.hpp", "#pragma once\nint f();\n"},
  };
  EXPECT_TRUE(run_on("layering", acyclic).empty());
}

// -------------------------------------------------------------- framework

TEST(FrameworkTest, RunAllAggregatesAndJsonIsWellFormed) {
  const Tree tree = Tree::from_specs(
      {{"src/util/bad.cpp",
        "void f() { throw std::runtime_error(\"quote \\\" here\"); }\n"}});
  const RunResult result = run_all(tree);
  ASSERT_FALSE(result.findings.empty());
  const std::string json = to_json(result.findings);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"pass\": \"throw-discipline\""), std::string::npos);

  EXPECT_THROW(run_pass(tree, "no-such-pass"), std::runtime_error);
}

}  // namespace
}  // namespace anb::lint
