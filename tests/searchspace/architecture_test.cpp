#include "anb/searchspace/architecture.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "anb/searchspace/space.hpp"
#include "anb/util/error.hpp"
#include "anb/util/rng.hpp"

namespace anb {
namespace {

Architecture uniform_arch(int e, int k, int L, bool se) {
  Architecture a;
  for (auto& b : a.blocks) b = BlockConfig{e, k, L, se};
  return a;
}

TEST(ArchitectureTest, ToStringFormat) {
  const Architecture a = uniform_arch(6, 5, 3, true);
  const std::string s = a.to_string();
  EXPECT_EQ(s.substr(0, 8), "e6k5L3s1");
  // 7 groups separated by dashes.
  EXPECT_EQ(std::count(s.begin(), s.end(), '-'), 6);
}

TEST(ArchitectureTest, FromStringRoundTrip) {
  Rng rng(3);
  const SearchSpace& sp = MnasSpace::instance();
  for (int i = 0; i < 50; ++i) {
    const Architecture a = MnasSpace::to_blocks(sp.sample(rng));
    EXPECT_EQ(Architecture::from_string(a.to_string()), a);
  }
}

TEST(ArchitectureTest, FromStringRejectsMalformed) {
  EXPECT_THROW(Architecture::from_string(""), Error);
  EXPECT_THROW(Architecture::from_string("e6k5L3s1"), Error);  // one block
  EXPECT_THROW(Architecture::from_string("garbage-in-seven-pieces-x-y-z"),
               Error);
  // Eight blocks.
  const std::string eight =
      "e1k3L1s0-e1k3L1s0-e1k3L1s0-e1k3L1s0-e1k3L1s0-e1k3L1s0-e1k3L1s0-"
      "e1k3L1s0";
  EXPECT_THROW(Architecture::from_string(eight), Error);
  // Bad se flag.
  const std::string bad_se =
      "e1k3L1s2-e1k3L1s0-e1k3L1s0-e1k3L1s0-e1k3L1s0-e1k3L1s0-e1k3L1s0";
  EXPECT_THROW(Architecture::from_string(bad_se), Error);
}

TEST(ArchitectureTest, HashEqualityConsistent) {
  const Architecture a = uniform_arch(4, 3, 2, false);
  const Architecture b = uniform_arch(4, 3, 2, false);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(ArchitectureTest, HashDiscriminates) {
  Rng rng(5);
  const SearchSpace& sp = MnasSpace::instance();
  // Distinct architectures should essentially never collide.
  std::set<std::uint64_t> hashes;
  std::set<std::uint64_t> indices;
  for (int i = 0; i < 2000; ++i) {
    const Arch a = sp.sample(rng);
    if (indices.insert(sp.to_index(a)).second) {
      hashes.insert(MnasSpace::to_blocks(a).hash());
    }
  }
  EXPECT_EQ(hashes.size(), indices.size());
}

TEST(ArchitectureTest, DefaultIsZeroInitialized) {
  const Architecture a;
  for (const auto& b : a.blocks) {
    EXPECT_EQ(b.expansion, 1);
    EXPECT_EQ(b.kernel, 3);
    EXPECT_EQ(b.layers, 1);
    EXPECT_FALSE(b.se);
  }
}

}  // namespace
}  // namespace anb
