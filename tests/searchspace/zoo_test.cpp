#include "anb/searchspace/zoo.hpp"

#include <gtest/gtest.h>

#include <set>

#include "anb/searchspace/space.hpp"

namespace anb {
namespace {

TEST(ZooTest, AllReferenceModelsAreInTheSpace) {
  const SearchSpace& sp = MnasSpace::instance();
  for (const auto& model : reference_zoo()) {
    // from_blocks validates; is_valid double-checks the lifted genotype.
    EXPECT_TRUE(sp.is_valid(MnasSpace::from_blocks(model.arch))) << model.name;
    EXPECT_FALSE(model.name.empty());
  }
}

TEST(ZooTest, ZooHasFourDistinctBaselines) {
  const SearchSpace& sp = MnasSpace::instance();
  const auto zoo = reference_zoo();
  EXPECT_EQ(zoo.size(), 4u);
  std::set<std::uint64_t> unique;
  std::set<std::string> names;
  for (const auto& model : zoo) {
    unique.insert(sp.to_index(MnasSpace::from_blocks(model.arch)));
    names.insert(model.name);
  }
  EXPECT_EQ(unique.size(), zoo.size());
  EXPECT_EQ(names.size(), zoo.size());
}

TEST(ZooTest, EffnetB0UsesSeEverywhere) {
  const auto b0 = effnet_b0_like();
  for (const auto& block : b0.arch.blocks) EXPECT_TRUE(block.se);
  EXPECT_EQ(b0.arch.blocks[0].expansion, 1);  // stage 1 is e=1 in B0
}

TEST(ZooTest, EdgeTpuVariantAvoidsSe) {
  // EfficientNet-EdgeTPU drops SE because DPU-style accelerators stall on
  // the global-pool side path — the motif Fig. 6 relies on.
  const auto edgetpu = effnet_edgetpu_s_like();
  for (const auto& block : edgetpu.arch.blocks) EXPECT_FALSE(block.se);
}

TEST(ZooTest, NamesAreStable) {
  EXPECT_EQ(effnet_b0_like().name, "effnet-b0");
  EXPECT_EQ(mobilenet_v3_like().name, "mobilenetv3-l");
  EXPECT_EQ(effnet_edgetpu_s_like().name, "effnet-edgetpu-s");
  EXPECT_EQ(mnasnet_a1_like().name, "mnasnet-a1");
}

}  // namespace
}  // namespace anb
