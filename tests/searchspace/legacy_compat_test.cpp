// The ONE sanctioned caller of the deprecated anb::legacy::SearchSpace
// facade (see the header's removal note). Pins that every legacy static
// forwards to MnasSpace::instance() with identical results, so code still
// on the old all-static API keeps working — byte for byte — until the
// facade is deleted. New code must not copy these call patterns; resolve a
// space and use the interface.

#include "anb/searchspace/legacy.hpp"

#include <gtest/gtest.h>

#include "anb/util/error.hpp"

// Sanctioned exemption: this suite exists to exercise the deprecated
// facade, so the deprecation warnings it triggers are expected.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace anb {
namespace {

using Legacy = legacy::SearchSpace;

TEST(LegacyCompatTest, OptionTablesForwardToMnasSpace) {
  EXPECT_EQ(Legacy::expansion_options(), MnasSpace::expansion_options());
  EXPECT_EQ(Legacy::kernel_options(), MnasSpace::kernel_options());
  EXPECT_EQ(Legacy::layer_options(), MnasSpace::layer_options());
  EXPECT_EQ(Legacy::kNumDecisions, MnasSpace::kNumDecisions);
  EXPECT_EQ(Legacy::decision_sizes(), MnasSpace::instance().decision_sizes());
  EXPECT_EQ(Legacy::cardinality(), MnasSpace::instance().cardinality());
  EXPECT_EQ(Legacy::feature_dim(), MnasSpace::instance().feature_dim());
}

TEST(LegacyCompatTest, SamplingMatchesInterfaceStream) {
  // Same seed, same RNG discipline: the legacy static consumes the stream
  // exactly like the interface, so the sequences are identical.
  Rng legacy_rng(99);
  Rng iface_rng(99);
  for (int i = 0; i < 20; ++i) {
    const Architecture a = Legacy::sample(legacy_rng);
    const Architecture b =
        MnasSpace::to_blocks(MnasSpace::instance().sample(iface_rng));
    EXPECT_EQ(Legacy::to_index(a), MnasSpace::instance().to_index(
                                       MnasSpace::from_blocks(b)));
  }
}

TEST(LegacyCompatTest, RoundTripsAndQueriesAgree) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const Architecture arch = Legacy::sample(rng);
    const Arch genotype = MnasSpace::from_blocks(arch);

    EXPECT_TRUE(Legacy::is_valid(arch));
    EXPECT_NO_THROW(Legacy::validate(arch));

    const std::uint64_t index = Legacy::to_index(arch);
    EXPECT_EQ(index, MnasSpace::instance().to_index(genotype));
    EXPECT_EQ(Legacy::to_index(Legacy::from_index(index)), index);

    EXPECT_EQ(Legacy::features(arch),
              MnasSpace::instance().features(genotype));

    const std::vector<int> decisions = Legacy::to_decisions(arch);
    ASSERT_EQ(decisions.size(),
              static_cast<std::size_t>(Legacy::kNumDecisions));
    EXPECT_EQ(Legacy::to_index(Legacy::from_decisions(decisions)), index);

    EXPECT_EQ(Legacy::neighbors(arch).size(),
              MnasSpace::instance().neighbors(genotype).size());
  }
}

TEST(LegacyCompatTest, MutateStaysInSpaceAndDiffers) {
  Rng rng(13);
  const Architecture arch = Legacy::sample(rng);
  for (int i = 0; i < 10; ++i) {
    const Architecture mutant = Legacy::mutate(arch, rng);
    EXPECT_TRUE(Legacy::is_valid(mutant));
    EXPECT_NE(Legacy::to_index(mutant), Legacy::to_index(arch));
  }
}

TEST(LegacyCompatTest, ValidationStillRejectsBadOptions) {
  Rng rng(21);
  Architecture bad = Legacy::sample(rng);
  bad.blocks[0].kernel = 7;  // not a MnasNet kernel option
  EXPECT_FALSE(Legacy::is_valid(bad));
  EXPECT_THROW(Legacy::validate(bad), Error);
  EXPECT_THROW(Legacy::from_decisions({1, 2, 3}), Error);  // wrong length
}

}  // namespace
}  // namespace anb

#pragma GCC diagnostic pop
