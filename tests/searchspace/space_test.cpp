#include "anb/searchspace/space.hpp"

#include <gtest/gtest.h>

#include <set>

#include "anb/util/error.hpp"

namespace anb {
namespace {

const SearchSpace& sp() { return MnasSpace::instance(); }

TEST(SearchSpaceTest, CardinalityMatchesPaper) {
  // (3 * 2 * 3 * 2)^7 = 36^7 ~ 7.8e10 ~ "roughly 10^11 unique models".
  EXPECT_EQ(sp().cardinality(), 78364164096ULL);
}

TEST(SearchSpaceTest, RegistryResolvesMnasNet) {
  EXPECT_EQ(&space(SpaceId::kMnasNet), &MnasSpace::instance());
  EXPECT_EQ(&space_from_name("mnasnet"), &MnasSpace::instance());
  EXPECT_THROW(space_from_name("MnasNet"), Error);  // exact-match contract
  EXPECT_THROW(space_from_name(""), Error);
  EXPECT_TRUE(space_registered(SpaceId::kMnasNet));
}

TEST(SearchSpaceTest, DecisionSizes) {
  const auto& sizes = sp().decision_sizes();
  ASSERT_EQ(sizes.size(), 28u);
  for (int b = 0; b < kNumBlocks; ++b) {
    EXPECT_EQ(sizes[static_cast<std::size_t>(4 * b)], 3);      // expansion
    EXPECT_EQ(sizes[static_cast<std::size_t>(4 * b + 1)], 2);  // kernel
    EXPECT_EQ(sizes[static_cast<std::size_t>(4 * b + 2)], 3);  // layers
    EXPECT_EQ(sizes[static_cast<std::size_t>(4 * b + 3)], 2);  // se
  }
}

TEST(SearchSpaceTest, ValidationAcceptsAllOptionCombos) {
  for (int e : MnasSpace::expansion_options())
    for (int k : MnasSpace::kernel_options())
      for (int L : MnasSpace::layer_options())
        for (bool se : {false, true}) {
          Architecture a;
          for (auto& b : a.blocks) b = BlockConfig{e, k, L, se};
          EXPECT_TRUE(sp().is_valid(MnasSpace::from_blocks(a)));
        }
}

TEST(SearchSpaceTest, ValidationRejectsBadOptions) {
  Architecture a;  // default valid
  a.blocks[0].expansion = 3;
  EXPECT_THROW(MnasSpace::from_blocks(a), Error);
  a.blocks[0].expansion = 1;
  a.blocks[2].kernel = 7;
  EXPECT_THROW(MnasSpace::from_blocks(a), Error);
  a.blocks[2].kernel = 3;
  a.blocks[6].layers = 4;
  EXPECT_THROW(MnasSpace::from_blocks(a), Error);
}

TEST(SearchSpaceTest, ValidationRejectsForeignGenotypes) {
  Rng rng(11);
  Arch a = sp().sample(rng);
  a.space = SpaceId::kFbnet;  // right bytes, wrong tag
  EXPECT_FALSE(sp().is_valid(a));
  EXPECT_THROW(sp().validate(a), Error);
  Arch b = sp().sample(rng);
  b.d[0] = 3;  // expansion option index out of range
  EXPECT_FALSE(sp().is_valid(b));
  Arch c = sp().sample(rng);
  c.d[static_cast<std::size_t>(c.n)] = 1;  // nonzero padding past n
  EXPECT_FALSE(sp().is_valid(c));
}

TEST(SearchSpaceTest, SampleIsValidAndVaried) {
  Rng rng(1);
  std::set<std::uint64_t> unique;
  for (int i = 0; i < 200; ++i) {
    const Arch a = sp().sample(rng);
    sp().validate(a);
    unique.insert(sp().to_index(a));
  }
  EXPECT_GT(unique.size(), 195u);  // collisions in 7.8e10 are ~impossible
}

TEST(SearchSpaceTest, SampleMarginalsRoughlyUniform) {
  Rng rng(2);
  int e_counts[3] = {0, 0, 0};
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const Architecture a = MnasSpace::to_blocks(sp().sample(rng));
    for (const auto& b : a.blocks) {
      if (b.expansion == 1) ++e_counts[0];
      if (b.expansion == 4) ++e_counts[1];
      if (b.expansion == 6) ++e_counts[2];
    }
  }
  const double total = n * kNumBlocks;
  for (int c : e_counts) EXPECT_NEAR(c / total, 1.0 / 3.0, 0.01);
}

TEST(SearchSpaceTest, MutateChangesExactlyOneDecision) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const Arch a = sp().sample(rng);
    const Arch m = sp().mutate(a, rng);
    EXPECT_NE(a, m);
    int diffs = 0;
    for (int d = 0; d < sp().num_decisions(); ++d) {
      diffs += a.d[static_cast<std::size_t>(d)] !=
               m.d[static_cast<std::size_t>(d)];
    }
    EXPECT_EQ(diffs, 1);
    sp().validate(m);
  }
}

TEST(SearchSpaceTest, NeighborsCountAndDistance) {
  Rng rng(4);
  const Arch a = sp().sample(rng);
  const auto neighbors = sp().neighbors(a);
  // Sum over decisions of (options - 1) = 7 * (2 + 1 + 2 + 1) = 42.
  EXPECT_EQ(neighbors.size(), 42u);
  std::set<std::uint64_t> unique;
  for (const auto& n : neighbors) {
    EXPECT_NE(n, a);
    unique.insert(sp().to_index(n));
  }
  EXPECT_EQ(unique.size(), neighbors.size());
}

TEST(SearchSpaceTest, IndexRoundTripSamples) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const Arch a = sp().sample(rng);
    EXPECT_EQ(sp().from_index(sp().to_index(a)), a);
  }
}

TEST(SearchSpaceTest, IndexBoundsChecked) {
  EXPECT_NO_THROW(sp().from_index(0));
  EXPECT_NO_THROW(sp().from_index(sp().cardinality() - 1));
  EXPECT_THROW(sp().from_index(sp().cardinality()), Error);
}

TEST(SearchSpaceTest, DecisionsRoundTrip) {
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const Arch a = sp().sample(rng);
    std::vector<int> decisions;
    for (int d = 0; d < sp().num_decisions(); ++d)
      decisions.push_back(a.d[static_cast<std::size_t>(d)]);
    EXPECT_EQ(sp().from_decisions(decisions), a);
  }
}

TEST(SearchSpaceTest, FromDecisionsValidatesShape) {
  EXPECT_THROW(sp().from_decisions({0, 1, 2}), Error);
  std::vector<int> decisions(28, 0);
  decisions[0] = 5;  // expansion index out of range
  EXPECT_THROW(sp().from_decisions(decisions), Error);
  decisions[0] = -1;
  EXPECT_THROW(sp().from_decisions(decisions), Error);
}

TEST(SearchSpaceTest, BlockConversionRoundTrips) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    const Arch a = sp().sample(rng);
    EXPECT_EQ(MnasSpace::from_blocks(MnasSpace::to_blocks(a)), a);
  }
}

TEST(SearchSpaceTest, FeaturesOneHotStructure) {
  EXPECT_EQ(sp().feature_dim(), 63);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const Arch a = sp().sample(rng);
    const auto f = sp().features(a);
    ASSERT_EQ(f.size(), 63u);
    for (int b = 0; b < kNumBlocks; ++b) {
      const std::size_t base = static_cast<std::size_t>(b) * 9;
      // Expansion one-hot sums to 1, kernel to 1, layers to 1.
      EXPECT_DOUBLE_EQ(f[base] + f[base + 1] + f[base + 2], 1.0);
      EXPECT_DOUBLE_EQ(f[base + 3] + f[base + 4], 1.0);
      EXPECT_DOUBLE_EQ(f[base + 5] + f[base + 6] + f[base + 7], 1.0);
      EXPECT_TRUE(f[base + 8] == 0.0 || f[base + 8] == 1.0);
    }
  }
}

TEST(SearchSpaceTest, FeaturesInjective) {
  Rng rng(8);
  const Arch a = sp().sample(rng);
  const Arch b = sp().mutate(a, rng);
  EXPECT_NE(sp().features(a), sp().features(b));
}

// Index bijection property over random raw indices (not just sampled archs).
class IndexBijection : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IndexBijection, RoundTripsFromRawIndex) {
  // Map the parameter into the index range deterministically.
  std::uint64_t state = GetParam() + 12345;
  const std::uint64_t index = splitmix64(state) % sp().cardinality();
  const Arch a = sp().from_index(index);
  sp().validate(a);
  EXPECT_EQ(sp().to_index(a), index);
}

INSTANTIATE_TEST_SUITE_P(RandomIndices, IndexBijection,
                         ::testing::Range<std::uint64_t>(0, 50));

}  // namespace
}  // namespace anb
