#include "anb/fbnet/fbnet_sim.hpp"

#include <gtest/gtest.h>

#include "anb/util/metrics.hpp"
#include "anb/util/stats.hpp"

namespace anb {
namespace {

TrainingScheme quick_scheme(int epochs) {
  TrainingScheme s;
  s.batch_size = 512;
  s.total_epochs = epochs;
  s.resize_start_epoch = 0;
  s.resize_finish_epoch = 0;
  s.res_start = 224;
  s.res_finish = 224;
  return s;
}

class FbnetSimTest : public ::testing::Test {
 protected:
  FbnetTrainingSimulator sim_{42};
  Rng rng_{7};
};

TEST_F(FbnetSimTest, Deterministic) {
  FbnetTrainingSimulator other(42);
  const FbnetArchitecture arch = FbnetSpace::to_ops(FbnetSpace::instance().sample(rng_));
  EXPECT_DOUBLE_EQ(sim_.train(arch, reference_scheme(), 3).top1,
                   other.train(arch, reference_scheme(), 3).top1);
}

TEST_F(FbnetSimTest, AccuracyRangeRealistic) {
  std::vector<double> accs;
  for (int i = 0; i < 150; ++i)
    accs.push_back(sim_.reference_accuracy(FbnetSpace::to_ops(FbnetSpace::instance().sample(rng_))));
  EXPECT_GT(min_value(accs), 0.45);
  EXPECT_LT(max_value(accs), 0.85);
  EXPECT_GT(stddev(accs), 0.015);  // meaningful spread for ranking studies
}

TEST_F(FbnetSimTest, CapacityImprovesQuality) {
  FbnetArchitecture big, small;
  for (auto& o : big.ops) o = FbnetOp::kE6K5;
  for (int i = 0; i < kFbnetNumLayers; ++i) {
    small.ops[static_cast<std::size_t>(i)] =
        FbnetSpace::slots()[static_cast<std::size_t>(i)].skip_allowed
            ? FbnetOp::kSkip
            : FbnetOp::kE1K3;
  }
  EXPECT_GT(sim_.latent_quality(big), sim_.latent_quality(small) + 1.0);
  EXPECT_GT(sim_.reference_accuracy(big), sim_.reference_accuracy(small));
}

TEST_F(FbnetSimTest, MoreEpochsHigherAccuracy) {
  for (int i = 0; i < 10; ++i) {
    const FbnetArchitecture arch = FbnetSpace::to_ops(FbnetSpace::instance().sample(rng_));
    EXPECT_LT(sim_.expected_accuracy(arch, quick_scheme(15)),
              sim_.expected_accuracy(arch, quick_scheme(60)));
  }
}

TEST_F(FbnetSimTest, ProxyPreservesRankings) {
  // The generalizability claim: the paper's proxy methodology carries over.
  std::vector<double> ref, prox;
  for (int i = 0; i < 150; ++i) {
    const FbnetArchitecture arch = FbnetSpace::to_ops(FbnetSpace::instance().sample(rng_));
    ref.push_back(sim_.train(arch, reference_scheme(), 0).top1);
    prox.push_back(sim_.train(arch, quick_scheme(30), 0).top1);
  }
  EXPECT_GT(kendall_tau(ref, prox), 0.85);
}

TEST_F(FbnetSimTest, CostScalesWithSize) {
  FbnetArchitecture big, small;
  for (auto& o : big.ops) o = FbnetOp::kE6K5;
  for (int i = 0; i < kFbnetNumLayers; ++i) {
    small.ops[static_cast<std::size_t>(i)] =
        FbnetSpace::slots()[static_cast<std::size_t>(i)].skip_allowed
            ? FbnetOp::kSkip
            : FbnetOp::kE1K3;
  }
  EXPECT_GT(sim_.training_cost_hours(big, reference_scheme()),
            2.0 * sim_.training_cost_hours(small, reference_scheme()));
}

TEST_F(FbnetSimTest, TraitsWellFormed) {
  for (int i = 0; i < 30; ++i) {
    const ArchTraits traits = sim_.traits(FbnetSpace::to_ops(FbnetSpace::instance().sample(rng_)));
    EXPECT_GE(traits.size_factor, 0.0);
    EXPECT_LE(traits.size_factor, 1.0);
    EXPECT_GE(traits.depth_norm, 0.0);
    EXPECT_LE(traits.depth_norm, 1.0);
    EXPECT_GE(traits.expand_norm, 0.0);
    EXPECT_LE(traits.expand_norm, 1.0);
    EXPECT_GT(traits.macs_224, 1e7);
  }
}

TEST_F(FbnetSimTest, WorldSeedMatters) {
  FbnetTrainingSimulator other(99);
  int diffs = 0;
  for (int i = 0; i < 20; ++i) {
    const FbnetArchitecture arch = FbnetSpace::to_ops(FbnetSpace::instance().sample(rng_));
    diffs +=
        std::abs(sim_.latent_quality(arch) - other.latent_quality(arch)) >
        1e-6;
  }
  EXPECT_GT(diffs, 15);
}

}  // namespace
}  // namespace anb
