#include "anb/fbnet/fbnet_space.hpp"

#include <gtest/gtest.h>

#include <set>

#include "anb/util/error.hpp"

namespace anb {
namespace {

FbnetArchitecture all_op(FbnetOp op) {
  FbnetArchitecture arch;
  for (auto& o : arch.ops) o = op;
  return arch;
}

TEST(FbnetSpaceTest, SlotTableStructure) {
  const auto& slots = FbnetSpace::slots();
  // 1 + 4*5 + 1 = 22 layers; four strided stage entries.
  int strided = 0, skip_allowed = 0;
  for (const auto& slot : slots) {
    strided += slot.stride == 2;
    skip_allowed += slot.skip_allowed;
  }
  EXPECT_EQ(strided, 4);
  // skip legal: stage-1 layer (shape preserved) + 3 trailing layers in each
  // of the five 4-layer stages.
  EXPECT_EQ(skip_allowed, 16);
  EXPECT_EQ(slots.back().out_c, 352);
}

TEST(FbnetSpaceTest, CardinalityAboutTenToTheSeventeen) {
  // 6 no-skip layers with 6 ops, 16 skip layers with 7 ops.
  EXPECT_NEAR(FbnetSpace::log10_cardinality(),
              6.0 * std::log10(6.0) + 16.0 * std::log10(7.0), 1e-9);
  EXPECT_GT(FbnetSpace::log10_cardinality(), 17.0);
}

TEST(FbnetSpaceTest, ValidationEnforcesSkipLegality) {
  EXPECT_TRUE(FbnetSpace::is_valid(all_op(FbnetOp::kE6K5)));
  const FbnetArchitecture all_skip = all_op(FbnetOp::kSkip);
  EXPECT_FALSE(FbnetSpace::is_valid(all_skip));  // strided layers can't skip

  FbnetArchitecture legal_skip = all_op(FbnetOp::kE3K3);
  legal_skip.ops[2] = FbnetOp::kSkip;  // a trailing stage-2 layer
  EXPECT_TRUE(FbnetSpace::is_valid(legal_skip));
  legal_skip.ops[1] = FbnetOp::kSkip;  // first (strided) layer of stage 2
  EXPECT_FALSE(FbnetSpace::is_valid(legal_skip));
}

TEST(FbnetSpaceTest, SampleValidAndVaried) {
  Rng rng(1);
  std::set<std::uint64_t> unique;
  for (int i = 0; i < 300; ++i) {
    const FbnetArchitecture arch = FbnetSpace::to_ops(FbnetSpace::instance().sample(rng));
    FbnetSpace::validate(arch);
    unique.insert(arch.hash());
  }
  EXPECT_GT(unique.size(), 295u);
}

TEST(FbnetSpaceTest, MutateChangesOneLayer) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const FbnetArchitecture arch = FbnetSpace::to_ops(FbnetSpace::instance().sample(rng));
    const FbnetArchitecture mutant = FbnetSpace::mutate(arch, rng);
    FbnetSpace::validate(mutant);
    int diffs = 0;
    for (int l = 0; l < kFbnetNumLayers; ++l)
      diffs += arch.ops[static_cast<std::size_t>(l)] !=
               mutant.ops[static_cast<std::size_t>(l)];
    EXPECT_EQ(diffs, 1);
  }
}

TEST(FbnetSpaceTest, StringRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const FbnetArchitecture arch = FbnetSpace::to_ops(FbnetSpace::instance().sample(rng));
    EXPECT_EQ(FbnetArchitecture::from_string(arch.to_string()), arch);
  }
  EXPECT_THROW(FbnetArchitecture::from_string("e1k3"), Error);
  EXPECT_THROW(FbnetArchitecture::from_string("bogus-" +
                                              all_op(FbnetOp::kE1K3)
                                                  .to_string()
                                                  .substr(5)),
               Error);
}

TEST(FbnetSpaceTest, FeaturesOneHot) {
  EXPECT_EQ(FbnetSpace::instance().feature_dim(), 154);
  Rng rng(4);
  const FbnetArchitecture arch = FbnetSpace::to_ops(FbnetSpace::instance().sample(rng));
  const auto f = FbnetSpace::features(arch);
  ASSERT_EQ(f.size(), 154u);
  double total = 0.0;
  for (double v : f) {
    EXPECT_TRUE(v == 0.0 || v == 1.0);
    total += v;
  }
  EXPECT_DOUBLE_EQ(total, kFbnetNumLayers);
}

TEST(FbnetSpaceTest, OpHelpers) {
  EXPECT_EQ(fbnet_op_expansion(FbnetOp::kE6K5), 6);
  EXPECT_EQ(fbnet_op_kernel(FbnetOp::kE6K5), 5);
  EXPECT_EQ(fbnet_op_expansion(FbnetOp::kE1K3), 1);
  EXPECT_THROW(fbnet_op_expansion(FbnetOp::kSkip), Error);
  EXPECT_THROW(fbnet_op_kernel(FbnetOp::kSkip), Error);
  EXPECT_STREQ(fbnet_op_name(FbnetOp::kSkip), "skip");
}

// --- Interface contract ----------------------------------------------------
// FbnetSpace as seen through the polymorphic SearchSpace interface: the
// same contracts space_test.cpp pins for MnasSpace, at the points where
// FBNet differs (mixed per-layer radix from skip legality).

const SearchSpace& sp() { return FbnetSpace::instance(); }

TEST(FbnetSpaceContract, RegistryResolvesFbnet) {
  register_builtin_spaces();
  EXPECT_EQ(&space(SpaceId::kFbnet), &FbnetSpace::instance());
  EXPECT_EQ(&space_from_name("fbnet"), &FbnetSpace::instance());
  EXPECT_THROW(space_from_name("FBNet"), Error);  // exact-match only
}

TEST(FbnetSpaceContract, CardinalityMatchesDecisionSizes) {
  const std::vector<int>& sizes = sp().decision_sizes();
  ASSERT_EQ(sizes.size(), static_cast<std::size_t>(kFbnetNumLayers));
  std::uint64_t want = 1;
  for (int i = 0; i < kFbnetNumLayers; ++i) {
    EXPECT_EQ(sizes[static_cast<std::size_t>(i)], FbnetSpace::num_ops(i));
    want *= static_cast<std::uint64_t>(sizes[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(sp().cardinality(), want);
}

TEST(FbnetSpaceContract, IndexBijectionAtBounds) {
  // First and last points of the mixed-radix enumeration round-trip, and
  // one past the end is rejected.
  const std::uint64_t last = sp().cardinality() - 1;
  for (const std::uint64_t index : {std::uint64_t{0}, std::uint64_t{1}, last}) {
    const Arch arch = sp().from_index(index);
    EXPECT_TRUE(sp().is_valid(arch)) << index;
    EXPECT_EQ(sp().to_index(arch), index);
  }
  EXPECT_THROW(sp().from_index(sp().cardinality()), Error);
}

TEST(FbnetSpaceContract, IndexBijectionAtRandomPoints) {
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    const Arch arch = sp().sample(rng);
    const std::uint64_t index = sp().to_index(arch);
    EXPECT_LT(index, sp().cardinality());
    EXPECT_EQ(sp().to_index(sp().from_index(index)), index);
  }
}

TEST(FbnetSpaceContract, SkipLegalityHoldsThroughTheInterface) {
  // Every decision byte below the layer's radix is in-space by
  // construction: skip is only enumerable where it is legal, so NO valid
  // genotype decodes to a skip on a strided layer.
  Rng rng(32);
  for (int i = 0; i < 100; ++i) {
    const FbnetArchitecture arch = FbnetSpace::to_ops(sp().sample(rng));
    const auto& slots = FbnetSpace::slots();
    for (int l = 0; l < kFbnetNumLayers; ++l) {
      if (arch.ops[static_cast<std::size_t>(l)] == FbnetOp::kSkip)
        EXPECT_TRUE(slots[static_cast<std::size_t>(l)].skip_allowed) << l;
    }
  }
  // And a genotype forged to skip on a strided layer is invalid.
  Arch forged = sp().sample(rng);
  forged.d[0] = static_cast<std::int8_t>(FbnetSpace::num_ops(0));
  EXPECT_FALSE(sp().is_valid(forged));
}

TEST(FbnetSpaceContract, MutateAlwaysDiffers) {
  Rng rng(33);
  for (int i = 0; i < 200; ++i) {
    const Arch arch = sp().sample(rng);
    const Arch mutant = sp().mutate(arch, rng);
    EXPECT_TRUE(sp().is_valid(mutant));
    EXPECT_NE(sp().to_index(mutant), sp().to_index(arch));
  }
}

TEST(FbnetSpaceContract, FeaturesAreDeterministic) {
  Rng rng(34);
  for (int i = 0; i < 50; ++i) {
    const Arch arch = sp().sample(rng);
    const std::vector<double> once = sp().features(arch);
    ASSERT_EQ(once.size(), static_cast<std::size_t>(sp().feature_dim()));
    EXPECT_EQ(once, sp().features(arch));  // pure function of the genotype
    // And identical through a string round-trip of the genotype.
    EXPECT_EQ(once, sp().features(sp().arch_from_string(
                        sp().arch_to_string(arch))));
  }
}

TEST(FbnetIrTest, LoweringShapesAndComplexity) {
  const ModelIR big = build_fbnet_ir(all_op(FbnetOp::kE6K5), 224);
  // Shapes chain (skip Scale side-path joins as in the MnasNet tests).
  for (std::size_t l = 1; l < big.layers.size(); ++l) {
    if (big.layers[l].kind == OpKind::kScale) continue;
    EXPECT_EQ(big.layers[l].in_c, big.layers[l - 1].out_c)
        << big.layers[l].name;
  }
  // FBNet-max ~ 800M MACs; minimal (max skips, e1k3 elsewhere) far smaller.
  FbnetArchitecture minimal;
  for (int i = 0; i < kFbnetNumLayers; ++i) {
    minimal.ops[static_cast<std::size_t>(i)] =
        FbnetSpace::slots()[static_cast<std::size_t>(i)].skip_allowed
            ? FbnetOp::kSkip
            : FbnetOp::kE1K3;
  }
  const ModelIR small = build_fbnet_ir(minimal, 224);
  EXPECT_GT(big.total_macs(), 3 * small.total_macs());
  // Log-MAC bounds used by the simulator's size normalization.
  EXPECT_GT(std::log(static_cast<double>(small.total_macs())), 17.4);
  EXPECT_LT(std::log(static_cast<double>(big.total_macs())), 21.0);
}

TEST(FbnetIrTest, SkipContributesNothing) {
  FbnetArchitecture base = all_op(FbnetOp::kE3K3);
  FbnetArchitecture skipped = base;
  skipped.ops[3] = FbnetOp::kSkip;
  const ModelIR a = build_fbnet_ir(base, 224);
  const ModelIR b = build_fbnet_ir(skipped, 224);
  EXPECT_LT(b.total_macs(), a.total_macs());
  EXPECT_LT(b.layers.size(), a.layers.size());
}

TEST(FbnetIrTest, InvalidInputsThrow) {
  EXPECT_THROW(build_fbnet_ir(all_op(FbnetOp::kSkip), 224), Error);
  EXPECT_THROW(build_fbnet_ir(all_op(FbnetOp::kE3K3), 8), Error);
}

}  // namespace
}  // namespace anb
