#include "anb/hwsim/device.hpp"

#include <gtest/gtest.h>

#include "anb/searchspace/space.hpp"
#include "anb/searchspace/zoo.hpp"
#include "anb/util/error.hpp"
#include "anb/util/metrics.hpp"
#include "anb/util/rng.hpp"

namespace anb {
namespace {

Architecture uniform_arch(int e, int k, int L, bool se) {
  Architecture a;
  for (auto& b : a.blocks) b = BlockConfig{e, k, L, se};
  return a;
}

TEST(DeviceTest, CatalogHasSixPlatforms) {
  const auto devices = device_catalog();
  ASSERT_EQ(devices.size(), 6u);
  EXPECT_EQ(devices[0].name(), "tpuv2");
  EXPECT_EQ(devices[5].name(), "vck190");
}

TEST(DeviceTest, KindNameRoundTrip) {
  for (const auto& device : device_catalog()) {
    EXPECT_EQ(device_kind_from_name(device.name()), device.kind());
  }
  EXPECT_THROW(device_kind_from_name("h100"), Error);
}

TEST(DeviceTest, ExtendedCatalogAppendsTheTwoExtensionPlatforms) {
  const auto devices = extended_device_catalog();
  ASSERT_EQ(devices.size(), 8u);
  // The paper's six stay in the paper's order (dataset layout stability),
  // the extension platforms are strictly appended.
  const auto paper = device_catalog();
  for (std::size_t i = 0; i < paper.size(); ++i)
    EXPECT_EQ(devices[i].kind(), paper[i].kind());
  EXPECT_EQ(devices[6].kind(), DeviceKind::kMobileNpu);
  EXPECT_EQ(devices[6].name(), "npu-mobile");
  EXPECT_EQ(devices[7].kind(), DeviceKind::kServerCpu);
  EXPECT_EQ(devices[7].name(), "cpu-server");
  // Extension platforms are throughput-only, like the other non-FPGAs.
  EXPECT_FALSE(device_supports_latency(DeviceKind::kMobileNpu));
  EXPECT_FALSE(device_supports_latency(DeviceKind::kServerCpu));
}

TEST(DeviceTest, ExtensionPlatformNamesAreExactMatch) {
  EXPECT_EQ(device_kind_from_name("npu-mobile"), DeviceKind::kMobileNpu);
  EXPECT_EQ(device_kind_from_name("cpu-server"), DeviceKind::kServerCpu);
  // No fuzzy matching: case, truncation, and word-order variants all
  // throw, so a typo can never silently resolve to a different fleet.
  for (const char* bad : {"NPU-Mobile", "npu", "mobile-npu", "npu-mobile ",
                          "Cpu-Server", "cpu", "server-cpu", "cpuserver"}) {
    EXPECT_THROW(device_kind_from_name(bad), Error) << bad;
  }
}

TEST(DeviceTest, OnlyFpgasReportLatency) {
  EXPECT_TRUE(device_supports_latency(DeviceKind::kZcu102));
  EXPECT_TRUE(device_supports_latency(DeviceKind::kVck190));
  EXPECT_FALSE(device_supports_latency(DeviceKind::kA100));
  EXPECT_FALSE(device_supports_latency(DeviceKind::kTpuV3));

  const ModelIR ir = build_ir(effnet_b0_like().arch, 224);
  EXPECT_THROW(make_device(DeviceKind::kA100).measure_latency(ir, 1), Error);
  EXPECT_NO_THROW(make_device(DeviceKind::kZcu102).measure_latency(ir, 1));
}

TEST(DeviceTest, ThroughputMagnitudesRealistic) {
  const ModelIR b0 = build_ir(effnet_b0_like().arch, 224);
  struct Expect {
    DeviceKind kind;
    double lo, hi;
  };
  // Broad plausibility bands for an EfficientNet-B0-class model.
  const Expect bands[] = {
      {DeviceKind::kA100, 2000, 15000},  {DeviceKind::kRtx3090, 1000, 8000},
      {DeviceKind::kTpuV3, 800, 6000},   {DeviceKind::kTpuV2, 300, 2500},
      {DeviceKind::kZcu102, 100, 1200},  {DeviceKind::kVck190, 600, 5000},
  };
  for (const auto& band : bands) {
    const double thr = make_device(band.kind).throughput_fps(b0);
    EXPECT_GT(thr, band.lo) << device_kind_name(band.kind);
    EXPECT_LT(thr, band.hi) << device_kind_name(band.kind);
  }
}

TEST(DeviceTest, FpgaLatencyMilliseconds) {
  const ModelIR b0 = build_ir(effnet_b0_like().arch, 224);
  const double zcu = make_device(DeviceKind::kZcu102).latency_ms(b0);
  const double vck = make_device(DeviceKind::kVck190).latency_ms(b0);
  EXPECT_GT(zcu, 1.0);
  EXPECT_LT(zcu, 30.0);
  EXPECT_GT(vck, 0.3);
  EXPECT_LT(vck, 10.0);
  EXPECT_LT(vck, zcu);  // Versal is the faster part
}

TEST(DeviceTest, BiggerModelIsSlower) {
  const ModelIR small = build_ir(uniform_arch(1, 3, 1, false), 224);
  const ModelIR big = build_ir(uniform_arch(6, 5, 3, true), 224);
  for (const auto& device : device_catalog()) {
    EXPECT_GT(device.throughput_fps(small), device.throughput_fps(big))
        << device.name();
  }
}

TEST(DeviceTest, SeHurtsDpuMoreThanGpu) {
  // The EdgeTPU/DPU story: SE's global-pool side path stalls the systolic
  // pipeline, so adding SE costs FPGAs a larger throughput fraction.
  const ModelIR no_se = build_ir(uniform_arch(6, 3, 2, false), 224);
  const ModelIR with_se = build_ir(uniform_arch(6, 3, 2, true), 224);
  const Device zcu = make_device(DeviceKind::kZcu102);
  const Device a100 = make_device(DeviceKind::kA100);
  const double dpu_ratio =
      zcu.throughput_fps(with_se) / zcu.throughput_fps(no_se);
  const double gpu_ratio =
      a100.throughput_fps(with_se) / a100.throughput_fps(no_se);
  EXPECT_LT(dpu_ratio, gpu_ratio);
  EXPECT_LT(dpu_ratio, 0.8);
}

TEST(DeviceTest, DeviceRankingsDiverge) {
  // FLOPs-agnostic behaviour: device rankings must not be identical,
  // otherwise a hardware-aware benchmark would be pointless (paper §1).
  Rng rng(11);
  std::vector<double> zcu_thr, tpu_thr, inv_flops;
  const Device zcu = make_device(DeviceKind::kZcu102);
  const Device tpu = make_device(DeviceKind::kTpuV3);
  for (int i = 0; i < 150; ++i) {
    const ModelIR ir = build_ir(MnasSpace::to_blocks(MnasSpace::instance().sample(rng)), 224);
    zcu_thr.push_back(zcu.throughput_fps(ir));
    tpu_thr.push_back(tpu.throughput_fps(ir));
    inv_flops.push_back(1.0 / ir.gflops());
  }
  EXPECT_LT(kendall_tau(zcu_thr, tpu_thr), 0.95);
  EXPECT_LT(kendall_tau(zcu_thr, inv_flops), 0.75);
  EXPECT_GT(kendall_tau(zcu_thr, tpu_thr), 0.2);  // still same-task devices
}

TEST(DeviceTest, MeasurementNoiseSmallAndUnbiased) {
  const ModelIR ir = build_ir(effnet_b0_like().arch, 224);
  for (const auto& device : device_catalog()) {
    const double expected = device.throughput_fps(ir);
    double acc = 0.0;
    const int n = 64;
    for (int s = 0; s < n; ++s)
      acc += device.measure_throughput(ir, static_cast<std::uint64_t>(s));
    EXPECT_NEAR(acc / n / expected, 1.0, 0.02) << device.name();
  }
}

TEST(DeviceTest, MeasurementDeterministicPerSeed) {
  const ModelIR ir = build_ir(effnet_b0_like().arch, 224);
  const Device dev = make_device(DeviceKind::kRtx3090);
  EXPECT_DOUBLE_EQ(dev.measure_throughput(ir, 5),
                   dev.measure_throughput(ir, 5));
  EXPECT_NE(dev.measure_throughput(ir, 5), dev.measure_throughput(ir, 6));
}

TEST(DeviceTest, ThroughputConsistentWithBatchTime) {
  const ModelIR ir = build_ir(effnet_b0_like().arch, 224);
  for (const auto& device : device_catalog()) {
    const double t = device.batch_time_s(ir, device.spec().measure_batch);
    const double expected =
        device.spec().compute_cores * device.spec().measure_batch / t;
    EXPECT_NEAR(device.throughput_fps(ir), expected, 1e-9) << device.name();
  }
}

TEST(DeviceTest, BatchingAmortizesOverheads) {
  // Per-image time at batch N is below batch-1 time on batched devices.
  const ModelIR ir = build_ir(effnet_b0_like().arch, 224);
  const Device a100 = make_device(DeviceKind::kA100);
  const double t1 = a100.batch_time_s(ir, 1);
  const double t128 = a100.batch_time_s(ir, 128) / 128.0;
  EXPECT_LT(t128, t1);
}

TEST(DeviceTest, InvalidArgumentsThrow) {
  const ModelIR ir = build_ir(effnet_b0_like().arch, 224);
  const Device dev = make_device(DeviceKind::kA100);
  EXPECT_THROW(dev.batch_time_s(ir, 0), Error);
  ModelIR empty;
  EXPECT_THROW(dev.batch_time_s(empty, 1), Error);
  DeviceSpec bad = dev.spec();
  bad.peak_flops = 0;
  EXPECT_THROW(Device{bad}, Error);
}

// Property: positivity and finiteness across random models and devices.
class DeviceProperty : public ::testing::TestWithParam<int> {};

TEST_P(DeviceProperty, AllMeasurementsPositiveFinite) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1200);
  const ModelIR ir = build_ir(MnasSpace::to_blocks(MnasSpace::instance().sample(rng)), 224);
  for (const auto& device : device_catalog()) {
    const double thr = device.measure_throughput(ir, 99);
    EXPECT_TRUE(std::isfinite(thr));
    EXPECT_GT(thr, 0.0);
    if (device.supports_latency()) {
      const double lat = device.measure_latency(ir, 99);
      EXPECT_TRUE(std::isfinite(lat));
      EXPECT_GT(lat, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomArchs, DeviceProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace anb
