#include <gtest/gtest.h>

#include "anb/hwsim/device.hpp"
#include "anb/searchspace/space.hpp"
#include "anb/searchspace/zoo.hpp"
#include "anb/util/rng.hpp"

namespace anb {
namespace {

Architecture uniform_arch(int e, int k, int L, bool se) {
  Architecture a;
  for (auto& b : a.blocks) b = BlockConfig{e, k, L, se};
  return a;
}

TEST(EnergyTest, PositiveFiniteOnAllDevices) {
  const ModelIR b0 = build_ir(effnet_b0_like().arch, 224);
  for (const auto& device : device_catalog()) {
    const double mj = device.energy_mj_per_image(b0);
    EXPECT_TRUE(std::isfinite(mj)) << device.name();
    EXPECT_GT(mj, 0.0) << device.name();
  }
}

TEST(EnergyTest, PlausibleMagnitudesForB0) {
  // EfficientNet-B0-class inference: edge accelerators a few mJ to tens of
  // mJ per image, datacenter parts tens to hundreds.
  const ModelIR b0 = build_ir(effnet_b0_like().arch, 224);
  const double zcu = make_device(DeviceKind::kZcu102).energy_mj_per_image(b0);
  const double a100 = make_device(DeviceKind::kA100).energy_mj_per_image(b0);
  EXPECT_GT(zcu, 1.0);
  EXPECT_LT(zcu, 200.0);
  EXPECT_GT(a100, 1.0);
  EXPECT_LT(a100, 500.0);
}

TEST(EnergyTest, EdgeDpuMoreEfficientThanGpu) {
  // Per-image energy: int8 DPU at the edge beats a datacenter GPU on this
  // model class — the reason accelerator-aware search matters for edge.
  const ModelIR b0 = build_ir(effnet_b0_like().arch, 224);
  EXPECT_LT(make_device(DeviceKind::kVck190).energy_mj_per_image(b0),
            make_device(DeviceKind::kA100).energy_mj_per_image(b0));
}

TEST(EnergyTest, MonotoneInModelSize) {
  const ModelIR small = build_ir(uniform_arch(1, 3, 1, false), 224);
  const ModelIR big = build_ir(uniform_arch(6, 5, 3, true), 224);
  for (const auto& device : device_catalog()) {
    EXPECT_GT(device.energy_mj_per_image(big),
              device.energy_mj_per_image(small))
        << device.name();
  }
}

TEST(EnergyTest, MeasurementProtocolApplies) {
  const ModelIR b0 = build_ir(effnet_b0_like().arch, 224);
  const Device dev = make_device(DeviceKind::kZcu102);
  const double expected = dev.energy_mj_per_image(b0);
  EXPECT_DOUBLE_EQ(dev.measure_energy(b0, 3), dev.measure_energy(b0, 3));
  double acc = 0.0;
  for (int s = 0; s < 64; ++s)
    acc += dev.measure_energy(b0, static_cast<std::uint64_t>(s));
  EXPECT_NEAR(acc / 64 / expected, 1.0, 0.02);
}

TEST(EnergyTest, StaticPlusSwitchingStructure) {
  // Energy strictly exceeds the static-power floor (idle power x time), and
  // the switching share varies across architectures (compute-heavy models
  // burn proportionally more dynamic energy).
  Rng rng(3);
  const Device dev = make_device(DeviceKind::kA100);
  double min_share = 1.0, max_share = 0.0;
  for (int i = 0; i < 40; ++i) {
    const ModelIR ir = build_ir(MnasSpace::to_blocks(MnasSpace::instance().sample(rng)), 224);
    const int batch = dev.spec().measure_batch;
    const double static_mj = dev.spec().idle_power_w *
                             dev.batch_time_s(ir, batch) /
                             (dev.spec().compute_cores * batch) * 1e3;
    const double total_mj = dev.energy_mj_per_image(ir);
    EXPECT_GT(total_mj, static_mj);
    const double share = 1.0 - static_mj / total_mj;
    min_share = std::min(min_share, share);
    max_share = std::max(max_share, share);
  }
  EXPECT_GT(max_share, min_share + 0.01);
}

}  // namespace
}  // namespace anb
