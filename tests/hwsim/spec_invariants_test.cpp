#include <gtest/gtest.h>

#include "anb/hwsim/device.hpp"
#include "anb/searchspace/zoo.hpp"

namespace anb {
namespace {

/// Parameterized sweep: every catalog device must satisfy the same physical
/// and protocol invariants. Catching a bad spec edit here is much cheaper
/// than chasing a skewed Table 2 later.
class DeviceSpecInvariants : public ::testing::TestWithParam<int> {
 protected:
  Device device() const {
    return device_catalog()[static_cast<std::size_t>(GetParam())];
  }
};

TEST_P(DeviceSpecInvariants, PhysicalQuantitiesPositive) {
  // device() returns by value; keep the Device alive while spec refers
  // into it.
  const Device dev = device();
  const DeviceSpec& spec = dev.spec();
  EXPECT_GT(spec.peak_flops, 0.0);
  EXPECT_GT(spec.mem_bandwidth, 0.0);
  EXPECT_GT(spec.bytes_per_elem, 0.0);
  EXPECT_GT(spec.channel_align, 0.0);
  EXPECT_GE(spec.layer_overhead_s, 0.0);
  EXPECT_GE(spec.base_overhead_s, 0.0);
  EXPECT_GE(spec.fallback_overhead_s, 0.0);
  EXPECT_GT(spec.idle_power_w, 0.0);
  EXPECT_GT(spec.energy_per_flop_j, 0.0);
  EXPECT_GT(spec.energy_per_byte_j, 0.0);
}

TEST_P(DeviceSpecInvariants, EfficienciesAreFractions) {
  const Device dev = device();
  const DeviceSpec& spec = dev.spec();
  for (double eff : {spec.conv_eff, spec.dwconv_eff, spec.fc_eff,
                     spec.elementwise_eff}) {
    EXPECT_GT(eff, 0.0);
    EXPECT_LE(eff, 1.0);
  }
  // Matrix engines are always worse at depthwise than dense conv.
  EXPECT_LT(spec.dwconv_eff, spec.conv_eff);
}

TEST_P(DeviceSpecInvariants, MeasurementProtocolSane) {
  const Device dev = device();
  const DeviceSpec& spec = dev.spec();
  EXPECT_GE(spec.timed_runs, 1);
  EXPECT_LE(spec.timed_runs, 16);
  EXPECT_GT(spec.measurement_noise, 0.0);
  EXPECT_LT(spec.measurement_noise, 0.1);
  EXPECT_GE(spec.measure_batch, 1);
  EXPECT_GE(spec.compute_cores, 1);
}

TEST_P(DeviceSpecInvariants, Int8OnlyOnDpus) {
  const Device dev = device();
  const DeviceSpec& spec = dev.spec();
  if (device_supports_latency(spec.kind)) {
    EXPECT_DOUBLE_EQ(spec.bytes_per_elem, 1.0);  // quantized deployment
    EXPECT_GT(spec.fallback_overhead_s, 0.0);    // SE pipeline stalls
  } else {
    EXPECT_DOUBLE_EQ(spec.bytes_per_elem, 2.0);  // fp16/bf16
    EXPECT_DOUBLE_EQ(spec.fallback_overhead_s, 0.0);
  }
}

TEST_P(DeviceSpecInvariants, LatencyThroughputConsistency) {
  // Throughput can exceed 1/latency only via batching or multiple cores.
  const Device dev = device();
  const ModelIR ir = build_ir(effnet_b0_like().arch, 224);
  const double thr = dev.throughput_fps(ir);
  const double single_stream = 1e3 / dev.latency_ms(ir);
  const double parallelism =
      static_cast<double>(dev.spec().measure_batch) * dev.spec().compute_cores;
  EXPECT_LE(thr, single_stream * parallelism * 1.0001);
  EXPECT_GT(thr, single_stream * 0.9);  // batching never hurts here
}

TEST_P(DeviceSpecInvariants, EnergyBudgetConsistent) {
  // Implied *board* power = energy/image x total throughput: at least the
  // configured idle power (it is amortized into every image) and within a
  // plausible multiple of it (no perpetua mobilia in either direction).
  const Device dev = device();
  const ModelIR ir = build_ir(effnet_b0_like().arch, 224);
  const double watts =
      dev.energy_mj_per_image(ir) * 1e-3 * dev.throughput_fps(ir);
  EXPECT_GT(watts, dev.spec().idle_power_w * 0.9);
  EXPECT_LT(watts, dev.spec().idle_power_w * 20.0);
}

INSTANTIATE_TEST_SUITE_P(AllDevices, DeviceSpecInvariants,
                         ::testing::Range(0, 6),
                         [](const ::testing::TestParamInfo<int>& param) {
                           return std::string(device_kind_name(
                               device_catalog()[static_cast<std::size_t>(
                                                    param.param)]
                                   .kind()));
                         });

}  // namespace
}  // namespace anb
