#include "anb/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace anb {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ReseedResetsStream) {
  Rng rng(7);
  const auto first = rng();
  rng.reseed(7);
  EXPECT_EQ(rng(), first);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
  EXPECT_THROW(rng.uniform(2.0, 2.0), Error);
}

TEST(RngTest, UniformIndexCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(21);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, NormalScaled) {
  Rng rng(22);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
  EXPECT_THROW(rng.normal(0.0, -1.0), Error);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  EXPECT_THROW(rng.bernoulli(1.5), Error);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(41);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(RngTest, WeightedIndexRejectsBadInput) {
  Rng rng(1);
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zero), Error);
  const std::vector<double> negative{1.0, -1.0};
  EXPECT_THROW(rng.weighted_index(negative), Error);
}

TEST(RngTest, SampleIndicesDistinctAndInRange) {
  Rng rng(51);
  const auto idx = rng.sample_indices(100, 30);
  EXPECT_EQ(idx.size(), 30u);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 30u);
  for (auto i : idx) EXPECT_LT(i, 100u);
  EXPECT_THROW(rng.sample_indices(5, 6), Error);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(61);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(99);
  Rng child = a.fork();
  // The child should not replay the parent's stream.
  Rng b(99);
  (void)b.fork();
  int equal = 0;
  for (int i = 0; i < 50; ++i) equal += child() == b();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, HashCombineOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
}

TEST(RngTest, LognormalPositive) {
  Rng rng(71);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

}  // namespace
}  // namespace anb
