#include "anb/util/error.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <string>

namespace anb {
namespace {

std::string message_of(const std::function<void()>& f) {
  try {
    f();
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected anb::Error";
  return {};
}

TEST(ErrorTest, IsARuntimeError) {
  // Callers that only know std catch it; callers that know anb catch Error.
  EXPECT_THROW(throw Error("x"), std::runtime_error);
  EXPECT_THROW(throw Error("x"), Error);
}

TEST(AnbCheckTest, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(ANB_CHECK(1 + 1 == 2, "math works"));
}

TEST(AnbCheckTest, FailureThrowsError) {
  EXPECT_THROW(ANB_CHECK(false, "nope"), Error);
}

TEST(AnbCheckTest, MessageKeepsUserTextAndAppendsFileLine) {
  const std::string msg =
      message_of([] { ANB_CHECK(false, "bad argument: k > n"); });
  EXPECT_NE(msg.find("bad argument: k > n"), std::string::npos);
  // file:line suffix in the documented "(file:line)" format.
  EXPECT_NE(msg.find("error_test.cpp:"), std::string::npos);
  EXPECT_EQ(msg.back(), ')');
}

TEST(AnbCheckTest, ConditionOnlyEvaluatedOnce) {
  int evaluations = 0;
  ANB_CHECK([&] { return ++evaluations; }() > 0, "side effect");
  EXPECT_EQ(evaluations, 1);
}

TEST(AnbAssertTest, PassingInvariantDoesNotThrow) {
  EXPECT_NO_THROW(ANB_ASSERT(true, "fine"));
}

TEST(AnbAssertTest, FailureThrowsError) {
  EXPECT_THROW(ANB_ASSERT(false, "corrupt state"), Error);
}

TEST(AnbAssertTest, MessageCarriesInvariantPrefix) {
  const std::string msg =
      message_of([] { ANB_ASSERT(false, "heap order violated"); });
  // ANB_ASSERT marks library bugs, distinguishable from ANB_CHECK misuse.
  EXPECT_EQ(msg.rfind("internal invariant violated: ", 0), 0u) << msg;
  EXPECT_NE(msg.find("heap order violated"), std::string::npos);
  EXPECT_NE(msg.find("error_test.cpp:"), std::string::npos);
}

TEST(AnbCheckTest, UsableInSingleStatementContexts) {
  // The do/while(0) wrapper must make the macro a single statement.
  if (true)
    ANB_CHECK(true, "then-branch");
  else
    ANB_CHECK(true, "else-branch");
}

}  // namespace
}  // namespace anb
