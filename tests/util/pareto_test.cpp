#include "anb/util/pareto.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "anb/util/error.hpp"
#include "anb/util/rng.hpp"

namespace anb {
namespace {

TEST(ParetoTest, EmptyInput) {
  EXPECT_TRUE(pareto_front({}, {}).empty());
}

TEST(ParetoTest, SinglePoint) {
  const std::vector<double> a{1.0}, b{2.0};
  EXPECT_EQ(pareto_front(a, b), (std::vector<std::size_t>{0}));
}

TEST(ParetoTest, SimpleDomination) {
  // Point 1 dominates point 0; point 2 is incomparable with 1.
  const std::vector<double> acc{0.5, 0.7, 0.8};
  const std::vector<double> thr{100, 200, 150};
  const auto front = pareto_front(acc, thr);
  EXPECT_EQ(front.size(), 2u);
  EXPECT_TRUE(std::find(front.begin(), front.end(), 1u) != front.end());
  EXPECT_TRUE(std::find(front.begin(), front.end(), 2u) != front.end());
}

TEST(ParetoTest, MinimizationDirection) {
  // Accuracy up, latency down: point 0 (high acc, low lat) dominates 1.
  const std::vector<double> acc{0.8, 0.7};
  const std::vector<double> lat{2.0, 3.0};
  const auto front =
      pareto_front(acc, lat, /*maximize1=*/true, /*maximize2=*/false);
  EXPECT_EQ(front, (std::vector<std::size_t>{0}));
}

TEST(ParetoTest, DuplicatesAllKept) {
  const std::vector<double> a{1.0, 1.0, 0.5};
  const std::vector<double> b{2.0, 2.0, 1.0};
  const auto front = pareto_front(a, b);
  EXPECT_EQ(front.size(), 2u);
}

TEST(ParetoTest, SizeMismatchThrows) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(pareto_front(a, b), Error);
}

TEST(ParetoTest, FrontSortedByFirstObjective) {
  Rng rng(8);
  std::vector<double> a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(rng.uniform());
    b.push_back(rng.uniform());
  }
  const auto front = pareto_front(a, b);
  for (std::size_t i = 1; i < front.size(); ++i)
    EXPECT_LE(a[front[i - 1]], a[front[i]]);
}

// Property: no front member is dominated by any point; every non-member is
// dominated by some front member.
class ParetoProperty : public ::testing::TestWithParam<int> {};

TEST_P(ParetoProperty, FrontIsExactlyTheNonDominatedSet) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 77);
  std::vector<double> a, b;
  const int n = 3 + static_cast<int>(rng.uniform_index(80));
  for (int i = 0; i < n; ++i) {
    a.push_back(static_cast<double>(rng.uniform_index(10)));
    b.push_back(static_cast<double>(rng.uniform_index(10)));
  }
  const auto front = pareto_front(a, b);
  auto dominates = [&](std::size_t i, std::size_t j) {
    return a[i] >= a[j] && b[i] >= b[j] && (a[i] > a[j] || b[i] > b[j]);
  };
  std::vector<bool> in_front(a.size(), false);
  for (auto i : front) in_front[i] = true;
  for (std::size_t i = 0; i < a.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < a.size(); ++j)
      if (j != i && dominates(j, i)) dominated = true;
    EXPECT_EQ(in_front[i], !dominated) << "point " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomClouds, ParetoProperty, ::testing::Range(0, 25));

TEST(HypervolumeTest, SingleRectangle) {
  const std::vector<ParetoPoint> front{{3.0, 4.0, 0}};
  EXPECT_DOUBLE_EQ(hypervolume_2d(front, 1.0, 1.0), 6.0);
}

TEST(HypervolumeTest, TwoPointStaircase) {
  const std::vector<ParetoPoint> front{{2.0, 3.0, 0}, {3.0, 1.0, 1}};
  // (3-0)*(1-0) + (2-0)*(3-1) = 3 + 4 = 7 with ref (0,0)
  EXPECT_DOUBLE_EQ(hypervolume_2d(front, 0.0, 0.0), 7.0);
}

TEST(HypervolumeTest, DominatedPointAddsNothing) {
  const std::vector<ParetoPoint> with{{2.0, 3.0, 0}, {1.0, 1.0, 1}};
  const std::vector<ParetoPoint> without{{2.0, 3.0, 0}};
  EXPECT_DOUBLE_EQ(hypervolume_2d(with, 0.0, 0.0),
                   hypervolume_2d(without, 0.0, 0.0));
}

TEST(HypervolumeTest, BadReferenceThrows) {
  const std::vector<ParetoPoint> front{{1.0, 1.0, 0}};
  EXPECT_THROW(hypervolume_2d(front, 2.0, 0.0), Error);
}

TEST(HypervolumeTest, EmptyFrontIsZero) {
  EXPECT_DOUBLE_EQ(hypervolume_2d({}, 0.0, 0.0), 0.0);
}

}  // namespace
}  // namespace anb
