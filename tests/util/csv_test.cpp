#include "anb/util/csv.hpp"

#include <gtest/gtest.h>

#include "anb/util/error.hpp"

namespace anb {
namespace {

TEST(CsvTest, WriterBasic) {
  CsvWriter w({"a", "b"});
  w.add_row(std::vector<std::string>{"1", "2"});
  EXPECT_EQ(w.to_string(), "a,b\n1,2\n");
  EXPECT_EQ(w.rows(), 1u);
}

TEST(CsvTest, WriterQuotesSpecials) {
  CsvWriter w({"x"});
  w.add_row({std::string("he said \"hi\", then\nleft")});
  EXPECT_EQ(w.to_string(), "x\n\"he said \"\"hi\"\", then\nleft\"\n");
}

TEST(CsvTest, WriterNumericRow) {
  CsvWriter w({"a", "b"});
  w.add_row(std::vector<double>{1.5, -2.0});
  const auto rows = parse_csv(w.to_string());
  EXPECT_EQ(rows[1][0], "1.5");
  EXPECT_EQ(rows[1][1], "-2");
}

TEST(CsvTest, WriterRejectsBadRow) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row(std::vector<std::string>{"only-one"}), Error);
  EXPECT_THROW(CsvWriter({}), Error);
}

TEST(CsvTest, ParseSimple) {
  const auto rows = parse_csv("a,b\n1,2\n3,4\n");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvTest, ParseQuotedWithEmbeddedDelimiters) {
  const auto rows = parse_csv("\"a,b\",\"c\"\"d\",\"e\nf\"\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "a,b");
  EXPECT_EQ(rows[0][1], "c\"d");
  EXPECT_EQ(rows[0][2], "e\nf");
}

TEST(CsvTest, ParseCrLf) {
  const auto rows = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "2");
}

TEST(CsvTest, ParseMissingTrailingNewline) {
  const auto rows = parse_csv("a,b\n1,2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "2");
}

TEST(CsvTest, ParseEmptyCells) {
  const auto rows = parse_csv("a,,c\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], "");
}

TEST(CsvTest, ParseUnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv("\"abc\n"), Error);
}

TEST(CsvTest, RoundTrip) {
  CsvWriter w({"name", "value"});
  w.add_row(std::vector<std::string>{"plain", "1"});
  w.add_row(std::vector<std::string>{"with,comma", "2"});
  w.add_row(std::vector<std::string>{"with\"quote", "3"});
  const auto rows = parse_csv(w.to_string());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[2][0], "with,comma");
  EXPECT_EQ(rows[3][0], "with\"quote");
}

}  // namespace
}  // namespace anb
