#include "anb/util/stats.hpp"

#include <gtest/gtest.h>

#include "anb/util/error.hpp"
#include "anb/util/rng.hpp"

namespace anb {
namespace {

TEST(StatsTest, MeanBasic) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_THROW(mean(std::vector<double>{}), Error);
}

TEST(StatsTest, VarianceUnbiased) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(variance(xs), 4.571428571, 1e-9);
  EXPECT_NEAR(population_variance(xs), 4.0, 1e-12);
  EXPECT_THROW(variance(std::vector<double>{1.0}), Error);
}

TEST(StatsTest, StddevIsSqrtVariance) {
  const std::vector<double> xs{1.0, 3.0, 5.0};
  EXPECT_NEAR(stddev(xs) * stddev(xs), variance(xs), 1e-12);
}

TEST(StatsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(StatsTest, QuantileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_THROW(quantile(xs, 1.5), Error);
}

TEST(StatsTest, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 7.0);
}

TEST(StatsTest, ArgsortStable) {
  const std::vector<double> xs{2.0, 1.0, 2.0, 0.0};
  const auto idx = argsort(xs);
  EXPECT_EQ(idx, (std::vector<std::size_t>{3, 1, 0, 2}));
}

TEST(StatsTest, RanksWithTiesAveraged) {
  const std::vector<double> xs{10.0, 20.0, 20.0, 30.0};
  const auto r = ranks_with_ties(xs);
  EXPECT_DOUBLE_EQ(r[0], 0.0);
  EXPECT_DOUBLE_EQ(r[1], 1.5);
  EXPECT_DOUBLE_EQ(r[2], 1.5);
  EXPECT_DOUBLE_EQ(r[3], 3.0);
}

TEST(StatsTest, RunningMaxMonotone) {
  const std::vector<double> xs{1.0, 3.0, 2.0, 5.0, 0.0};
  const auto rm = running_max(xs);
  EXPECT_EQ(rm, (std::vector<double>{1.0, 3.0, 3.0, 5.0, 5.0}));
}

// Property sweep: quantile(0.5) agrees with median on random inputs.
class QuantileProperty : public ::testing::TestWithParam<int> {};

TEST_P(QuantileProperty, MedianAgreesWithQuantileHalf) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> xs;
  const int n = 1 + static_cast<int>(rng.uniform_index(50));
  for (int i = 0; i < n; ++i) xs.push_back(rng.normal());
  EXPECT_NEAR(median(xs), quantile(xs, 0.5), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomInputs, QuantileProperty,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace anb
