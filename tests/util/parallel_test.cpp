#include "anb/util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

#include "anb/util/error.hpp"

namespace anb {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, ResultsMatchSerial) {
  const std::size_t n = 5000;
  std::vector<double> parallel_out(n), serial_out(n);
  auto f = [](std::size_t i) {
    return std::sin(static_cast<double>(i)) * static_cast<double>(i % 17);
  };
  parallel_for(n, [&](std::size_t i) { parallel_out[i] = f(i); });
  for (std::size_t i = 0; i < n; ++i) serial_out[i] = f(i);
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(ParallelForTest, ZeroAndTinyN) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
  int calls = 0;
  parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, ExplicitThreadCount) {
  const std::size_t n = 100;
  std::atomic<int> total{0};
  parallel_for(n, [&](std::size_t) { total.fetch_add(1); },
               /*num_threads=*/3);
  EXPECT_EQ(total.load(), 100);
}

TEST(ParallelForTest, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(1000,
                   [](std::size_t i) {
                     if (i == 137) throw Error("boom");
                   }),
      Error);
}

TEST(ParallelForTest, NullBodyRejected) {
  EXPECT_THROW(parallel_for(10, nullptr), Error);
}

}  // namespace
}  // namespace anb
