#include "anb/util/table.hpp"

#include <gtest/gtest.h>

#include "anb/util/error.hpp"

namespace anb {
namespace {

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable t({"Model", "Tau"});
  t.add_row({"XGB", "0.922"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Model"), std::string::npos);
  EXPECT_NE(s.find("XGB"), std::string::npos);
  EXPECT_NE(s.find("0.922"), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(TextTableTest, ColumnsAligned) {
  TextTable t({"a", "bbbb"});
  t.add_row({"xxxxxx", "y"});
  const std::string s = t.to_string();
  // All lines must have the same width.
  std::size_t width = std::string::npos;
  std::size_t start = 0;
  while (start < s.size()) {
    const auto end = s.find('\n', start);
    const std::size_t len = end - start;
    if (width == std::string::npos) width = len;
    EXPECT_EQ(len, width);
    start = end + 1;
  }
}

TEST(TextTableTest, RejectsBadShapes) {
  EXPECT_THROW(TextTable({}), Error);
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), Error);
}

TEST(TextTableTest, NumFormatting) {
  EXPECT_EQ(TextTable::num(0.98367, 3), "0.984");
  EXPECT_EQ(TextTable::num(1.0, 1), "1.0");
  EXPECT_EQ(TextTable::sci(0.00306, 2), "3.06e-03");
}

}  // namespace
}  // namespace anb
