#include "anb/util/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "anb/util/error.hpp"
#include "anb/util/rng.hpp"

namespace anb {
namespace {

TEST(KendallTauTest, PerfectAgreement) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(kendall_tau(x, x), 1.0);
}

TEST(KendallTauTest, PerfectDisagreement) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{4.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(kendall_tau(x, y), -1.0);
}

TEST(KendallTauTest, KnownValue) {
  // 7 concordant, 3 discordant pairs of 10 -> tau = 0.4
  // (matches scipy.stats.kendalltau([1,2,3,4,5], [3,1,4,2,5])).
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{3, 1, 4, 2, 5};
  EXPECT_NEAR(kendall_tau(x, y), 0.4, 1e-12);
}

TEST(KendallTauTest, KnownValueWithTies) {
  // tau-b with one x-tie: (5 - 0) / sqrt((6-1)(6-0)) = 5/sqrt(30)
  // (matches scipy.stats.kendalltau([1,2,2,3], [1,3,2,4])).
  const std::vector<double> x{1, 2, 2, 3};
  const std::vector<double> y{1, 3, 2, 4};
  EXPECT_NEAR(kendall_tau(x, y), 5.0 / std::sqrt(30.0), 1e-12);
}

TEST(KendallTauTest, InvariantToMonotoneTransform) {
  Rng rng(3);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(rng.normal());
    y.push_back(rng.normal());
  }
  const double base = kendall_tau(x, y);
  std::vector<double> x_cubed;
  for (double v : x) x_cubed.push_back(v * v * v);  // strictly monotone
  EXPECT_NEAR(kendall_tau(x_cubed, y), base, 1e-12);
}

TEST(KendallTauTest, SymmetricInArguments) {
  Rng rng(4);
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(rng.uniform());
    y.push_back(rng.uniform());
  }
  EXPECT_NEAR(kendall_tau(x, y), kendall_tau(y, x), 1e-12);
}

TEST(KendallTauTest, AllTiedThrows) {
  const std::vector<double> x{1.0, 1.0, 1.0};
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_THROW(kendall_tau(x, y), Error);
  EXPECT_THROW(kendall_tau(y, x), Error);
}

TEST(KendallTauTest, SizeMismatchThrows) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_THROW(kendall_tau(x, y), Error);
}

// Brute-force cross-check of the O(n log n) implementation.
double kendall_tau_brute(const std::vector<double>& x,
                         const std::vector<double>& y) {
  const std::size_t n = x.size();
  double concordant = 0, discordant = 0, tie_x = 0, tie_y = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx == 0 && dy == 0) {
        ++tie_x;
        ++tie_y;
      } else if (dx == 0) {
        ++tie_x;
      } else if (dy == 0) {
        ++tie_y;
      } else if (dx * dy > 0) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double tot = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  return (concordant - discordant) /
         std::sqrt((tot - tie_x) * (tot - tie_y));
}

class KendallBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(KendallBruteForce, MatchesBruteForceWithTies) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  std::vector<double> x, y;
  const int n = 5 + static_cast<int>(rng.uniform_index(60));
  for (int i = 0; i < n; ++i) {
    // Coarse grid -> plenty of ties.
    x.push_back(static_cast<double>(rng.uniform_index(6)));
    y.push_back(static_cast<double>(rng.uniform_index(6)));
  }
  // Skip the degenerate all-tied draw.
  if (*std::max_element(x.begin(), x.end()) ==
          *std::min_element(x.begin(), x.end()) ||
      *std::max_element(y.begin(), y.end()) ==
          *std::min_element(y.begin(), y.end())) {
    GTEST_SKIP();
  }
  EXPECT_NEAR(kendall_tau(x, y), kendall_tau_brute(x, y), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(RandomTiedInputs, KendallBruteForce,
                         ::testing::Range(0, 30));

TEST(SpearmanTest, PerfectMonotone) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{10, 100, 1000, 10000, 100000};
  EXPECT_NEAR(spearman_rho(x, y), 1.0, 1e-12);
}

TEST(SpearmanTest, KnownValue) {
  // scipy.stats.spearmanr([1,2,3,4,5], [5,6,7,8,7]) = 0.8207826816681233
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{5, 6, 7, 8, 7};
  EXPECT_NEAR(spearman_rho(x, y), 0.8207826816681233, 1e-12);
}

TEST(PearsonTest, LinearExact) {
  const std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y;
  for (double v : x) y.push_back(3.0 * v - 2.0);
  EXPECT_NEAR(pearson_r(x, y), 1.0, 1e-12);
}

TEST(PearsonTest, ZeroVarianceThrows) {
  const std::vector<double> x{1.0, 1.0, 1.0};
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_THROW(pearson_r(x, y), Error);
}

TEST(R2Test, PerfectAndBaseline) {
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r2_score(y, y), 1.0);
  const std::vector<double> at_mean{2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(r2_score(y, at_mean), 0.0);
}

TEST(R2Test, WorseThanMeanIsNegative) {
  const std::vector<double> y{1.0, 2.0, 3.0};
  const std::vector<double> bad{3.0, 1.0, 2.0};
  EXPECT_LT(r2_score(y, bad), 0.0);
}

TEST(ErrorMetricsTest, MaeRmseKnown) {
  const std::vector<double> y{0.0, 0.0, 0.0, 0.0};
  const std::vector<double> p{1.0, -1.0, 3.0, -3.0};
  EXPECT_DOUBLE_EQ(mae(y, p), 2.0);
  EXPECT_NEAR(rmse(y, p), std::sqrt(5.0), 1e-12);
}

TEST(ErrorMetricsTest, RmseAtLeastMae) {
  Rng rng(17);
  std::vector<double> y, p;
  for (int i = 0; i < 100; ++i) {
    y.push_back(rng.normal());
    p.push_back(rng.normal());
  }
  EXPECT_GE(rmse(y, p) + 1e-12, mae(y, p));
}

}  // namespace
}  // namespace anb
