#include "anb/util/json.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "anb/util/rng.hpp"

namespace anb {
namespace {

TEST(JsonTest, ScalarsRoundTrip) {
  EXPECT_EQ(Json::parse("null"), Json(nullptr));
  EXPECT_EQ(Json::parse("true"), Json(true));
  EXPECT_EQ(Json::parse("false"), Json(false));
  EXPECT_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_EQ(Json::parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonTest, DumpScalars) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(3).dump(), "3");
  EXPECT_EQ(Json("x").dump(), "\"x\"");
}

TEST(JsonTest, ObjectAccess) {
  Json j = Json::object();
  j["a"] = 1;
  j["b"] = "two";
  EXPECT_TRUE(j.contains("a"));
  EXPECT_FALSE(j.contains("c"));
  EXPECT_EQ(j.at("a").as_int(), 1);
  EXPECT_EQ(j.at("b").as_string(), "two");
  EXPECT_THROW(j.at("missing"), Error);
}

TEST(JsonTest, ArrayAccess) {
  Json j = Json::array();
  j.push_back(1.5);
  j.push_back("s");
  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(j.at(0).as_number(), 1.5);
  EXPECT_THROW(j.at(5), Error);
}

TEST(JsonTest, TypeMismatchThrows) {
  const Json j(1.5);
  EXPECT_THROW(j.as_string(), Error);
  EXPECT_THROW(j.as_array(), Error);
  EXPECT_THROW(j.as_object(), Error);
  EXPECT_THROW(j.as_bool(), Error);
  EXPECT_THROW(Json("x").as_number(), Error);
  EXPECT_THROW(Json(1.5).as_int(), Error);  // non-integral
}

TEST(JsonTest, NestedRoundTrip) {
  Json j = Json::object();
  j["name"] = "accel-nasbench";
  j["values"] = Json::array_of(std::vector<double>{1.0, -2.5, 3e-7});
  Json inner = Json::object();
  inner["flag"] = true;
  inner["n"] = Json(nullptr);
  j["inner"] = std::move(inner);

  for (int indent : {-1, 2}) {
    const Json back = Json::parse(j.dump(indent));
    EXPECT_EQ(back, j);
  }
}

TEST(JsonTest, StringEscapes) {
  const std::string s = "line1\nline2\t\"quoted\"\\slash\x01";
  const Json j(s);
  EXPECT_EQ(Json::parse(j.dump()).as_string(), s);
}

TEST(JsonTest, UnicodeEscapeParses) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");  // é
}

TEST(JsonTest, ParseErrors) {
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1,]"), Error);
  EXPECT_THROW(Json::parse("{\"a\":}"), Error);
  EXPECT_THROW(Json::parse("tru"), Error);
  EXPECT_THROW(Json::parse("1 2"), Error);
  EXPECT_THROW(Json::parse("\"unterminated"), Error);
  EXPECT_THROW(Json::parse("nan"), Error);
}

TEST(JsonTest, WhitespaceTolerant) {
  const Json j = Json::parse("  {\n \"a\" : [ 1 , 2 ] ,\t\"b\": {} }  ");
  EXPECT_EQ(j.at("a").size(), 2u);
  EXPECT_TRUE(j.at("b").is_object());
}

TEST(JsonTest, DoubleVectorHelpers) {
  const std::vector<double> xs{0.5, 1.25, -3.0};
  EXPECT_EQ(Json::array_of(xs).as_double_vector(), xs);
  const std::vector<int> is{1, -2, 3};
  EXPECT_EQ(Json::array_of(is).as_int_vector(), is);
}

TEST(JsonTest, NumberPrecisionRoundTrips) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.normal() * std::pow(10.0, rng.uniform(-8, 8));
    const Json back = Json::parse(Json(v).dump());
    EXPECT_DOUBLE_EQ(back.as_number(), v);
  }
}

TEST(JsonTest, NonFiniteRejectedOnDump) {
  EXPECT_THROW(Json(std::numeric_limits<double>::infinity()).dump(), Error);
  EXPECT_THROW(Json(std::nan("")).dump(), Error);
}

TEST(JsonTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/anb_json_test.json";
  Json j = Json::object();
  j["k"] = 3.25;
  write_text_file(path, j.dump());
  EXPECT_EQ(Json::parse(read_text_file(path)), j);
  std::remove(path.c_str());
  EXPECT_THROW(read_text_file(path), Error);
}

// Fuzz: random documents round-trip through dump/parse at any indent.
class JsonFuzz : public ::testing::TestWithParam<int> {
 protected:
  static Json random_value(Rng& rng, int depth) {
    const int kind = static_cast<int>(rng.uniform_index(depth >= 3 ? 4 : 6));
    switch (kind) {
      case 0: return Json(nullptr);
      case 1: return Json(rng.bernoulli(0.5));
      case 2: return Json(rng.normal() * std::pow(10.0, rng.uniform(-6, 6)));
      case 3: {
        std::string str;
        const auto len = rng.uniform_index(12);
        for (std::uint64_t i = 0; i < len; ++i)
          str += static_cast<char>(rng.uniform_index(94) + 33);
        if (rng.bernoulli(0.3)) str += "\"\n\t\\";
        return Json(std::move(str));
      }
      case 4: {
        Json arr = Json::array();
        const auto len = rng.uniform_index(5);
        for (std::uint64_t i = 0; i < len; ++i)
          arr.push_back(random_value(rng, depth + 1));
        return arr;
      }
      default: {
        Json obj = Json::object();
        const auto len = rng.uniform_index(5);
        for (std::uint64_t i = 0; i < len; ++i)
          obj["k" + std::to_string(i)] = random_value(rng, depth + 1);
        return obj;
      }
    }
  }
};

TEST_P(JsonFuzz, RoundTripsAtAnyIndent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 4242);
  const Json doc = random_value(rng, 0);
  EXPECT_EQ(Json::parse(doc.dump(-1)), doc);
  EXPECT_EQ(Json::parse(doc.dump(2)), doc);
  EXPECT_EQ(Json::parse(doc.dump(7)), doc);
}

INSTANTIATE_TEST_SUITE_P(RandomDocuments, JsonFuzz, ::testing::Range(0, 40));

TEST(JsonTest, ObjectKeysSortedInDump) {
  Json j = Json::object();
  j["zebra"] = 1;
  j["apple"] = 2;
  const std::string out = j.dump();
  EXPECT_LT(out.find("apple"), out.find("zebra"));
}

}  // namespace
}  // namespace anb
