#include "anb/util/fault.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "anb/util/parallel.hpp"

namespace anb {
namespace {

/// Every test restores the global registry to "nothing armed" so suites
/// sharing the binary never see leaked fault state.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm_all(); }
};

TEST_F(FaultTest, NothingArmedByDefault) {
  EXPECT_FALSE(fault::any_armed());
  EXPECT_FALSE(fault::is_armed("some.site"));
  EXPECT_FALSE(fault::should_fire("some.site").has_value());
  EXPECT_NO_THROW(fault::maybe_throw("some.site"));
  EXPECT_EQ(fault::fire_count("some.site"), 0u);
  EXPECT_EQ(fault::check_count("some.site"), 0u);
}

TEST_F(FaultTest, ArmDisarmLifecycle) {
  fault::arm("site.a", fault::Policy::always());
  EXPECT_TRUE(fault::any_armed());
  EXPECT_TRUE(fault::is_armed("site.a"));
  EXPECT_FALSE(fault::is_armed("site.b"));

  fault::arm("site.b", fault::Policy::one_shot());
  EXPECT_TRUE(fault::is_armed("site.b"));

  fault::disarm("site.a");
  EXPECT_FALSE(fault::is_armed("site.a"));
  EXPECT_TRUE(fault::any_armed());  // site.b still armed

  fault::disarm_all();
  EXPECT_FALSE(fault::any_armed());
  EXPECT_FALSE(fault::is_armed("site.b"));
}

TEST_F(FaultTest, DisarmingUnarmedSiteIsANoOp) {
  EXPECT_NO_THROW(fault::disarm("never.armed"));
  EXPECT_FALSE(fault::any_armed());
}

TEST_F(FaultTest, AlwaysFiresOnEveryCheck) {
  fault::arm("site", fault::Policy::always());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(fault::should_fire("site", i));
  EXPECT_EQ(fault::check_count("site"), 5u);
  EXPECT_EQ(fault::fire_count("site"), 5u);
}

TEST_F(FaultTest, OneShotFiresExactlyOnce) {
  fault::arm("site", fault::Policy::one_shot());
  EXPECT_TRUE(fault::should_fire("site"));
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(fault::should_fire("site"));
  EXPECT_EQ(fault::fire_count("site"), 1u);
  EXPECT_EQ(fault::check_count("site"), 5u);

  // Re-arming resets the shot.
  fault::arm("site", fault::Policy::one_shot());
  EXPECT_EQ(fault::check_count("site"), 0u);
  EXPECT_TRUE(fault::should_fire("site"));
}

TEST_F(FaultTest, EveryNthFiresOnMultiplesOfN) {
  fault::arm("site", fault::Policy::every_nth(3));
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i)
    fired.push_back(fault::should_fire("site").has_value());
  const std::vector<bool> expected{false, false, true,  false, false,
                                   true,  false, false, true};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(fault::fire_count("site"), 3u);
}

TEST_F(FaultTest, PolicyFactoriesValidate) {
  EXPECT_THROW(fault::Policy::every_nth(0), Error);
  EXPECT_THROW(fault::Policy::bernoulli(-0.1, 1), Error);
  EXPECT_THROW(fault::Policy::bernoulli(1.5, 1), Error);
  EXPECT_THROW(fault::arm("", fault::Policy::always()), Error);
}

TEST_F(FaultTest, BernoulliDecisionIsAPureFunctionOfSeedSiteKey) {
  // Record the decision for a batch of keys, then re-check in a different
  // order after re-arming: identical answers, per the determinism contract.
  fault::arm("site", fault::Policy::bernoulli(0.3, 1234));
  std::vector<bool> first;
  for (std::uint64_t key = 0; key < 200; ++key)
    first.push_back(fault::should_fire("site", key).has_value());

  fault::arm("site", fault::Policy::bernoulli(0.3, 1234));
  for (std::uint64_t key = 200; key-- > 0;) {
    EXPECT_EQ(fault::should_fire("site", key).has_value(), first[key])
        << "key " << key;
  }
}

TEST_F(FaultTest, BernoulliRateIsRoughlyHonored) {
  fault::arm("site", fault::Policy::bernoulli(0.2, 99));
  int fires = 0;
  const int kTrials = 2000;
  for (int key = 0; key < kTrials; ++key)
    fires += fault::should_fire("site", key).has_value() ? 1 : 0;
  // 0.2 * 2000 = 400 expected; sigma ~ 18. A 5-sigma band never flakes.
  EXPECT_GT(fires, 310);
  EXPECT_LT(fires, 490);
  EXPECT_EQ(fault::fire_count("site"), static_cast<std::uint64_t>(fires));
}

TEST_F(FaultTest, BernoulliDependsOnSeedAndSite) {
  const auto decisions = [](const std::string& site, std::uint64_t seed) {
    fault::arm(site, fault::Policy::bernoulli(0.5, seed));
    std::vector<bool> out;
    for (std::uint64_t key = 0; key < 128; ++key)
      out.push_back(fault::should_fire(site, key).has_value());
    fault::disarm(site);
    return out;
  };
  const auto base = decisions("site.x", 7);
  EXPECT_EQ(base, decisions("site.x", 7));
  EXPECT_NE(base, decisions("site.x", 8));
  EXPECT_NE(base, decisions("site.y", 7));
}

TEST_F(FaultTest, FireInfoDrawIsDeterministicAndUniformIsInRange) {
  fault::arm("site", fault::Policy::always());
  const auto a = fault::should_fire("site", 42);
  ASSERT_TRUE(a.has_value());
  const auto b = fault::should_fire("site", 42);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->draw, b->draw);
  EXPECT_NE(a->draw, fault::should_fire("site", 43)->draw);

  std::set<std::uint64_t> draws;
  for (std::uint64_t key = 0; key < 100; ++key) {
    const auto f = fault::should_fire("site", key);
    ASSERT_TRUE(f.has_value());
    EXPECT_GE(f->uniform(), 0.0);
    EXPECT_LT(f->uniform(), 1.0);
    draws.insert(f->draw);
  }
  EXPECT_GT(draws.size(), 95u);  // draws are essentially distinct
}

TEST_F(FaultTest, MaybeThrowRaisesInjectedFaultDerivedFromError) {
  fault::arm("site", fault::Policy::one_shot());
  EXPECT_THROW(fault::maybe_throw("site", 5), fault::InjectedFault);
  EXPECT_NO_THROW(fault::maybe_throw("site", 5));  // shot spent
  fault::arm("site", fault::Policy::always());
  EXPECT_THROW(fault::maybe_throw("site"), Error);  // the anb::Error family
}

TEST_F(FaultTest, ScopedFaultDisarmsOnExit) {
  {
    fault::ScopedFault guard("site", fault::Policy::always());
    EXPECT_TRUE(fault::is_armed("site"));
    EXPECT_TRUE(fault::should_fire("site"));
  }
  EXPECT_FALSE(fault::is_armed("site"));
  EXPECT_FALSE(fault::any_armed());
}

TEST_F(FaultTest, ScopedFaultRestoresPriorPolicy) {
  fault::arm("site", fault::Policy::bernoulli(0.25, 77));
  {
    fault::ScopedFault guard("site", fault::Policy::always());
    const auto p = fault::armed_policy("site");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->trigger, fault::Trigger::kAlways);
  }
  const auto restored = fault::armed_policy("site");
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->trigger, fault::Trigger::kBernoulli);
  EXPECT_DOUBLE_EQ(restored->probability, 0.25);
  EXPECT_EQ(restored->seed, 77u);
}

TEST_F(FaultTest, ScopedFaultsNest) {
  fault::ScopedFault outer("site", fault::Policy::every_nth(2));
  {
    fault::ScopedFault inner("site", fault::Policy::always());
    EXPECT_EQ(fault::armed_policy("site")->trigger, fault::Trigger::kAlways);
  }
  EXPECT_EQ(fault::armed_policy("site")->trigger, fault::Trigger::kEveryNth);
}

TEST_F(FaultTest, ParallelForWorkerInjectionPropagatesAsFirstError) {
  // An armed worker site makes parallel_for rethrow the injected fault on
  // the calling thread; iterations whose key does not fire still ran.
  for (const unsigned threads : {1u, 4u}) {
    fault::ScopedFault guard(kParallelForWorkerFaultSite,
                             fault::Policy::every_nth(10));
    std::atomic<int> ran{0};
    EXPECT_THROW(
        parallel_for(
            64, [&](std::size_t) { ran.fetch_add(1); }, threads),
        fault::InjectedFault)
        << "threads=" << threads;
    EXPECT_LT(ran.load(), 64) << "threads=" << threads;
  }
}

TEST_F(FaultTest, ParallelForBernoulliInjectionIsThreadCountInvariant) {
  // With a keyed Bernoulli policy the set of failing iteration indices is a
  // pure function of (seed, site, index). First record it via direct site
  // queries, then check parallel_for against it at several thread counts.
  fault::ScopedFault guard(kParallelForWorkerFaultSite,
                           fault::Policy::bernoulli(0.3, 5));
  std::vector<std::uint8_t> direct(128, 0);
  for (std::uint64_t i = 0; i < 128; ++i)
    direct[i] =
        fault::should_fire(kParallelForWorkerFaultSite, i).has_value() ? 0 : 1;

  for (const unsigned threads : {1u, 2u, 4u}) {
    fault::ScopedFault rearm(kParallelForWorkerFaultSite,
                             fault::Policy::bernoulli(0.3, 5));
    std::vector<std::uint8_t> ok(128, 0);
    try {
      parallel_for(
          128, [&](std::size_t i) { ok[i] = 1; }, threads);
      FAIL() << "expected at least one injected fault";
    } catch (const fault::InjectedFault&) {
    }
    // Iterations that were dispatched before the failure completed iff the
    // site did not fire for their index. Workers stop early after a throw,
    // so only assert no *fired* index ever ran.
    for (std::size_t i = 0; i < 128; ++i) {
      if (direct[i] == 0) {
        EXPECT_EQ(ok[i], 0) << "fired index " << i << " ran, threads="
                            << threads;
      }
    }
  }
}

}  // namespace
}  // namespace anb
