// Contention-heavy tests for parallel_for, written to give TSan something
// to bite on: many short tasks, shared atomics, exceptions racing with
// normal completion, and nested invocations. Run them under
// -DANB_SANITIZE=thread to audit the implementation (see README.md).

#include "anb/util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "anb/util/error.hpp"

namespace anb {
namespace {

// Oversubscribe relative to the work-stealing counter: lots of tiny
// iterations maximizes contention on the shared index.
TEST(ParallelStressTest, ManyTinyIterationsUnderContention) {
  const std::size_t n = 200000;
  std::atomic<std::size_t> sum{0};
  parallel_for(
      n, [&](std::size_t i) { sum.fetch_add(i, std::memory_order_relaxed); },
      /*num_threads=*/8);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// Each iteration writes a distinct slot — TSan verifies the claim in the
// header that distinct-i bodies need no synchronization of their own, and
// that the join provides the final happens-before edge to the caller.
TEST(ParallelStressTest, DisjointWritesNeedNoLocking) {
  const std::size_t n = 50000;
  std::vector<std::size_t> out(n, 0);
  parallel_for(n, [&](std::size_t i) { out[i] = i * 3; }, /*num_threads=*/8);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], i * 3);
}

TEST(ParallelStressTest, RepeatedInvocationsReuseNothingStale) {
  // parallel_for keeps no global state between calls; hammer it to let
  // TSan catch any accidental reuse across rounds.
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    parallel_for(100, [&](std::size_t) { count.fetch_add(1); },
                 /*num_threads=*/4);
    ASSERT_EQ(count.load(), 100);
  }
}

TEST(ParallelStressTest, FirstOfManyConcurrentExceptionsWins) {
  // Several workers throw nearly simultaneously; exactly one Error must
  // surface and the call must still join all threads cleanly.
  const std::size_t n = 10000;
  std::atomic<int> throwers{0};
  try {
    parallel_for(
        n,
        [&](std::size_t i) {
          if (i % 1000 == 999) {
            throwers.fetch_add(1);
            throw Error("worker " + std::to_string(i) + " failed");
          }
        },
        /*num_threads=*/8);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("failed"), std::string::npos);
  }
  EXPECT_GE(throwers.load(), 1);
}

TEST(ParallelStressTest, ExceptionStopsRemainingWorkEarly) {
  // After a failure the remaining iterations are abandoned; completed +
  // skipped must still account for every index exactly once (no double
  // execution while draining).
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  try {
    parallel_for(
        n,
        [&](std::size_t i) {
          hits[i].fetch_add(1);
          if (i == 10) throw Error("early failure");
        },
        /*num_threads=*/4);
    FAIL() << "expected Error";
  } catch (const Error&) {
  }
  std::size_t executed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const int h = hits[i].load();
    ASSERT_LE(h, 1) << "index " << i << " ran twice";
    executed += static_cast<std::size_t>(h);
  }
  EXPECT_GE(executed, 1u);
  EXPECT_LE(executed, n);
}

// Nested parallel_for is SUPPORTED: each call spawns its own short-lived
// workers and joins before returning, so there is no pool to re-enter and
// no deadlock; the cost is thread oversubscription, which is why library
// call sites keep parallelism at the outermost loop (see collection.cpp).
TEST(ParallelStressTest, NestedParallelForIsSupported) {
  const std::size_t outer = 8;
  const std::size_t inner = 500;
  std::vector<std::atomic<std::size_t>> totals(outer);
  parallel_for(
      outer,
      [&](std::size_t o) {
        parallel_for(
            inner,
            [&](std::size_t i) {
              totals[o].fetch_add(i, std::memory_order_relaxed);
            },
            /*num_threads=*/2);
      },
      /*num_threads=*/4);
  for (std::size_t o = 0; o < outer; ++o) {
    EXPECT_EQ(totals[o].load(), inner * (inner - 1) / 2);
  }
}

TEST(ParallelStressTest, ExceptionInsideNestedCallPropagatesToRoot) {
  EXPECT_THROW(
      parallel_for(4,
                   [](std::size_t o) {
                     parallel_for(100, [o](std::size_t i) {
                       if (o == 2 && i == 50) throw Error("nested boom");
                     });
                   }),
      Error);
}

TEST(ParallelStressTest, ZeroIterationsSpawnNoThreads) {
  // Must return without touching the body or creating workers.
  parallel_for(0, [](std::size_t) { FAIL() << "body must not run"; },
               /*num_threads=*/8);
}

TEST(ParallelStressTest, SingleThreadRunsInOrder) {
  // num_threads=1 is the serial fast path: strict iteration order.
  std::vector<std::size_t> order;
  parallel_for(100, [&](std::size_t i) { order.push_back(i); },
               /*num_threads=*/1);
  std::vector<std::size_t> expected(100);
  std::iota(expected.begin(), expected.end(), std::size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(ParallelStressTest, ThreadCountLargerThanWork) {
  // More threads than iterations must not over-execute or hang.
  std::vector<std::atomic<int>> hits(3);
  parallel_for(3, [&](std::size_t i) { hits[i].fetch_add(1); },
               /*num_threads=*/64);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace anb
