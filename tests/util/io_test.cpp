#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "anb/util/binary.hpp"
#include "anb/util/error.hpp"
#include "anb/util/io.hpp"

namespace anb {
namespace {

std::string scratch(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::shared_ptr<const io::Buffer>& buf) {
  return std::string(buf->data(), buf->size());
}

TEST(BufferTest, ReadFileRoundTripsBytes) {
  const std::string path = scratch("io_buffer_rt.bin");
  const std::string payload("ab\0cd\xFFz", 7);
  io::write_file(path, {payload.data(), payload.size()});
  const auto buf = io::Buffer::read_file(path);
  EXPECT_FALSE(buf->mapped());
  EXPECT_EQ(slurp(buf), payload);
}

TEST(BufferTest, MapFileSeesSameBytesAsRead) {
  const std::string path = scratch("io_buffer_map.bin");
  std::vector<char> payload(10000);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<char>(i * 31 + 7);
  io::write_file(path, payload);
  const auto mapped = io::Buffer::map_file(path);
  const auto heap = io::Buffer::read_file(path);
  ASSERT_EQ(mapped->size(), heap->size());
  EXPECT_EQ(slurp(mapped), slurp(heap));
  EXPECT_EQ(mapped->mapped(), io::mmap_supported());
}

TEST(BufferTest, EmptyFileYieldsEmptyBuffer) {
  const std::string path = scratch("io_buffer_empty.bin");
  io::write_file(path, {});
  EXPECT_EQ(io::Buffer::read_file(path)->size(), 0u);
  EXPECT_EQ(io::Buffer::map_file(path)->size(), 0u);
}

TEST(BufferTest, MissingFileThrowsWithPath) {
  const std::string path = scratch("io_no_such_file.bin");
  for (const auto loader : {io::Buffer::read_file, io::Buffer::map_file}) {
    try {
      loader(path);
      ADD_FAILURE() << "missing file did not throw";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
    }
  }
}

TEST(BufferTest, MappingSurvivesUnlink) {
  // POSIX keeps a mapped file's pages alive after the name is gone; the
  // Buffer must stay readable until destruction.
  const std::string path = scratch("io_buffer_unlink.bin");
  const std::string payload(4096, 'q');
  io::write_file(path, {payload.data(), payload.size()});
  const auto buf = io::Buffer::map_file(path);
  ASSERT_EQ(std::remove(path.c_str()), 0);
  EXPECT_EQ(slurp(buf), payload);
}

TEST(ArrayRefTest, OwningAndViewingAgree) {
  const std::vector<double> xs{1.0, 2.5, -3.0};
  const io::ArrayRef<double> owned{std::vector<double>(xs)};
  EXPECT_FALSE(owned.is_view());
  ASSERT_EQ(owned.size(), 3u);
  EXPECT_EQ(owned[1], 2.5);
  EXPECT_EQ(owned.to_vector(), xs);

  const io::ArrayRef<double> view{owned.span(), nullptr};
  EXPECT_TRUE(view.is_view());
  EXPECT_EQ(view.data(), owned.data());  // no copy
  EXPECT_EQ(view.to_vector(), xs);

  const io::ArrayRef<double> empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
}

TEST(ArrayRefTest, ViewKeepsItsBufferAlive) {
  auto buf = io::Buffer::from_bytes({'a', 'b', 'c', 'd'});
  const char* raw = buf->data();
  io::ArrayRef<char> view{{raw, 4}, buf};
  buf.reset();  // the view holds the last reference now
  EXPECT_EQ(view.to_vector(), (std::vector<char>{'a', 'b', 'c', 'd'}));
}

TEST(ChecksumTest, SensitiveToEveryBitAndPosition) {
  std::vector<char> data(257);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<char>(i);
  const std::uint64_t base = bin::checksum64(data);
  EXPECT_EQ(bin::checksum64(data), base);  // deterministic
  for (const std::size_t pos : {0u, 7u, 8u, 100u, 255u, 256u}) {
    std::vector<char> flipped = data;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 1);
    EXPECT_NE(bin::checksum64(flipped), base) << "byte " << pos;
  }
  // Position-dependent: swapping two words changes the sum.
  std::vector<char> swapped = data;
  std::swap_ranges(swapped.begin(), swapped.begin() + 8, swapped.begin() + 8);
  EXPECT_NE(bin::checksum64(swapped), base);
  // Length-dependent: a truncated tail changes the sum.
  EXPECT_NE(bin::checksum64({data.data(), data.size() - 1}), base);
}

TEST(BinaryContainerTest, WriterReaderRoundTrip) {
  bin::Writer w;
  const std::vector<double> f64{1.5, -2.5, 1e300};
  const std::vector<std::int32_t> i32{-1, 0, 7};
  const std::string meta = "{\"k\":1}";
  EXPECT_EQ(w.add_array<double>(bin::Tag::kF64, f64), 0u);
  EXPECT_EQ(w.add_array<std::int32_t>(bin::Tag::kI32, i32), 1u);
  EXPECT_EQ(w.add_section(bin::Tag::kMeta, {meta.data(), meta.size()}, 1), 2u);
  const std::vector<char> file = w.finish();
  EXPECT_TRUE(bin::has_magic(file));

  const bin::Reader r(io::Buffer::from_bytes(std::vector<char>(file)));
  EXPECT_EQ(r.format_version(), bin::kFormatVersion);
  ASSERT_EQ(r.num_sections(), 3u);
  EXPECT_EQ(r.tag(0), bin::Tag::kF64);
  EXPECT_EQ(r.array<double>(0, bin::Tag::kF64).to_vector(), f64);
  EXPECT_EQ(r.array<std::int32_t>(1, bin::Tag::kI32).to_vector(), i32);
  const auto raw = r.section(2, bin::Tag::kMeta);
  EXPECT_EQ(std::string(raw.data(), raw.size()), meta);
  // Zero-copy: the typed view points into the reader's buffer.
  const auto view = r.array<double>(0, bin::Tag::kF64);
  EXPECT_TRUE(view.is_view());
  EXPECT_GE(reinterpret_cast<const char*>(view.data()), r.buffer()->data());
}

TEST(BinaryContainerTest, WriterOutputIsDeterministic) {
  const auto build = [] {
    bin::Writer w;
    const std::vector<std::uint64_t> xs{9, 8, 7};
    w.add_array<std::uint64_t>(bin::Tag::kU64, xs);
    return w.finish();
  };
  EXPECT_EQ(build(), build());
}

TEST(BinaryContainerTest, TagMismatchAndBadIndexThrow) {
  bin::Writer w;
  const std::vector<double> xs{1.0};
  w.add_array<double>(bin::Tag::kF64, xs);
  const bin::Reader r(io::Buffer::from_bytes(w.finish()));
  EXPECT_THROW(r.section(0, bin::Tag::kMeta), Error);   // wrong tag
  EXPECT_THROW(r.section(1, bin::Tag::kF64), Error);    // bad index
  EXPECT_THROW(r.array<double>(7, bin::Tag::kF64), Error);
}

TEST(BinaryContainerTest, ElementSizeMismatchThrows) {
  // A 9-byte kU8 section is not a whole number of doubles; reading it as
  // one must throw instead of slicing off a partial element.
  bin::Writer w;
  const std::vector<std::uint8_t> bytes(9, 0xAB);
  w.add_array<std::uint8_t>(bin::Tag::kU8, bytes);
  const bin::Reader r(io::Buffer::from_bytes(w.finish()));
  EXPECT_EQ(r.array<std::uint8_t>(0, bin::Tag::kU8).size(), 9u);
  EXPECT_THROW(r.array<std::uint64_t>(0, bin::Tag::kU8), Error);
}

TEST(BinaryContainerTest, NonPowerOfTwoAlignmentRejectedByWriter) {
  bin::Writer w;
  const std::string payload = "xyz";
  EXPECT_THROW(w.add_section(bin::Tag::kMeta, {payload.data(), 3}, 3), Error);
  EXPECT_THROW(w.add_section(bin::Tag::kMeta, {payload.data(), 3}, 0), Error);
}

TEST(BinaryContainerTest, HasMagicSniffsCorrectly) {
  bin::Writer w;
  const std::vector<std::uint8_t> xs{1};
  w.add_array<std::uint8_t>(bin::Tag::kU8, xs);
  EXPECT_TRUE(bin::has_magic(w.finish()));
  const std::string json = "{\"format\": \"accel-nasbench-v1\"}";
  EXPECT_FALSE(bin::has_magic({json.data(), json.size()}));
  EXPECT_FALSE(bin::has_magic({json.data(), 0}));
}

}  // namespace
}  // namespace anb
