#include "anb/ir/model_ir.hpp"

#include <gtest/gtest.h>

#include "anb/searchspace/space.hpp"
#include "anb/searchspace/zoo.hpp"
#include "anb/util/error.hpp"
#include "anb/util/rng.hpp"

namespace anb {
namespace {

Architecture uniform_arch(int e, int k, int L, bool se) {
  Architecture a;
  for (auto& b : a.blocks) b = BlockConfig{e, k, L, se};
  return a;
}

TEST(ModelIrTest, EffnetB0LikeMatchesKnownComplexity) {
  // Real EfficientNet-B0: ~0.39B MACs, ~5.3M params at 224x224. Our B0-like
  // clip (L capped at 3) should land close below.
  const ModelIR ir = build_ir(effnet_b0_like().arch, 224);
  EXPECT_GT(ir.total_macs(), 300e6);
  EXPECT_LT(ir.total_macs(), 450e6);
  EXPECT_GT(ir.mparams(), 3.5);
  EXPECT_LT(ir.mparams(), 6.5);
}

TEST(ModelIrTest, StemAndHeadStructure) {
  const ModelIR ir = build_ir(uniform_arch(1, 3, 1, false), 224);
  ASSERT_GE(ir.layers.size(), 4u);
  const Layer& stem = ir.layers.front();
  EXPECT_EQ(stem.kind, OpKind::kConv2d);
  EXPECT_EQ(stem.in_c, 3);
  EXPECT_EQ(stem.out_c, MacroSkeleton::kStemChannels);
  EXPECT_EQ(stem.stride, 2);
  EXPECT_EQ(stem.out_h, 112);

  const Layer& fc = ir.layers.back();
  EXPECT_EQ(fc.kind, OpKind::kFullyConnected);
  EXPECT_EQ(fc.out_c, MacroSkeleton::kNumClasses);
  const Layer& pool = ir.layers[ir.layers.size() - 2];
  EXPECT_EQ(pool.kind, OpKind::kGlobalAvgPool);
  const Layer& head = ir.layers[ir.layers.size() - 3];
  EXPECT_EQ(head.out_c, MacroSkeleton::kHeadChannels);
}

TEST(ModelIrTest, ShapesChainCorrectly) {
  Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    const ModelIR ir = build_ir(MnasSpace::to_blocks(MnasSpace::instance().sample(rng)), 224);
    for (std::size_t l = 1; l < ir.layers.size(); ++l) {
      const Layer& prev = ir.layers[l - 1];
      const Layer& cur = ir.layers[l];
      if (cur.kind == OpKind::kScale) continue;  // side-path join
      EXPECT_EQ(cur.in_h, prev.out_h) << ir.layers[l].name;
      EXPECT_EQ(cur.in_w, prev.out_w) << ir.layers[l].name;
      EXPECT_EQ(cur.in_c, prev.out_c) << ir.layers[l].name;
    }
  }
}

TEST(ModelIrTest, SpatialDownsamplingBy32) {
  Rng rng(2);
  const ModelIR ir = build_ir(MnasSpace::to_blocks(MnasSpace::instance().sample(rng)), 224);
  // Stem s2 + four s2 stages -> 224 / 32 = 7 before head pooling.
  const Layer& pool = ir.layers[ir.layers.size() - 2];
  EXPECT_EQ(pool.in_h, 7);
  EXPECT_EQ(pool.in_w, 7);
}

TEST(ModelIrTest, ExpansionOneSkipsExpandConv) {
  const ModelIR ir = build_ir(uniform_arch(1, 3, 1, false), 224);
  for (const auto& layer : ir.layers) {
    EXPECT_EQ(layer.name.find(".expand"), std::string::npos) << layer.name;
  }
  const ModelIR ir6 = build_ir(uniform_arch(6, 3, 1, false), 224);
  int expands = 0;
  for (const auto& layer : ir6.layers)
    expands += layer.name.find(".expand") != std::string::npos;
  EXPECT_EQ(expands, kNumBlocks);
}

TEST(ModelIrTest, SeDecomposition) {
  const ModelIR with_se = build_ir(uniform_arch(4, 3, 1, true), 224);
  int pools = 0, squeezes = 0, excites = 0, scales = 0;
  for (const auto& layer : with_se.layers) {
    pools += layer.name.find(".se.pool") != std::string::npos;
    squeezes += layer.name.find(".se.squeeze") != std::string::npos;
    excites += layer.name.find(".se.excite") != std::string::npos;
    scales += layer.name.find(".se.scale") != std::string::npos;
  }
  EXPECT_EQ(pools, kNumBlocks);
  EXPECT_EQ(squeezes, kNumBlocks);
  EXPECT_EQ(excites, kNumBlocks);
  EXPECT_EQ(scales, kNumBlocks);

  const ModelIR no_se = build_ir(uniform_arch(4, 3, 1, false), 224);
  EXPECT_GT(with_se.layers.size(), no_se.layers.size());
  EXPECT_GT(with_se.total_params(), no_se.total_params());
}

TEST(ModelIrTest, ResidualOnlyOnShapePreservingLayers) {
  const ModelIR ir = build_ir(uniform_arch(4, 3, 3, false), 224);
  for (std::size_t l = 0; l < ir.layers.size(); ++l) {
    const Layer& layer = ir.layers[l];
    if (layer.kind != OpKind::kAdd) continue;
    // ".l1." first layers of strided stages cannot be residual.
    EXPECT_EQ(layer.name.find(".l1.residual") != std::string::npos &&
                  layer.name.find("b1.") == std::string::npos &&
                  layer.name.find("b5.") == std::string::npos &&
                  layer.name.find("b7.") == std::string::npos,
              false)
        << layer.name;
  }
  // With L=3 every stage has at least 2 residual adds (layers 2,3).
  int adds = 0;
  for (const auto& layer : ir.layers) adds += layer.kind == OpKind::kAdd;
  EXPECT_GE(adds, 2 * kNumBlocks);
}

TEST(ModelIrTest, MacsScaleWithOptions) {
  const auto base = build_ir(uniform_arch(1, 3, 1, false), 224).total_macs();
  EXPECT_GT(build_ir(uniform_arch(4, 3, 1, false), 224).total_macs(), base);
  EXPECT_GT(build_ir(uniform_arch(1, 5, 1, false), 224).total_macs(), base);
  EXPECT_GT(build_ir(uniform_arch(1, 3, 3, false), 224).total_macs(), base);
  EXPECT_GT(build_ir(uniform_arch(1, 3, 1, true), 224).total_macs(), base);
}

TEST(ModelIrTest, MacsScaleQuadraticallyWithResolution) {
  Rng rng(3);
  const Architecture a = MnasSpace::to_blocks(MnasSpace::instance().sample(rng));
  const auto m224 = static_cast<double>(build_ir(a, 224).total_macs());
  const auto m112 = static_cast<double>(build_ir(a, 112).total_macs());
  // FC/SE layers are resolution-independent, so the ratio is slightly
  // below exactly 4.
  EXPECT_GT(m224 / m112, 3.0);
  EXPECT_LT(m224 / m112, 4.2);
}

TEST(ModelIrTest, ParamsIndependentOfResolution) {
  Rng rng(4);
  const Architecture a = MnasSpace::to_blocks(MnasSpace::instance().sample(rng));
  EXPECT_EQ(build_ir(a, 224).total_params(), build_ir(a, 160).total_params());
}

TEST(ModelIrTest, DepthwiseKernelRecorded) {
  const ModelIR ir = build_ir(uniform_arch(1, 5, 1, false), 224);
  for (const auto& layer : ir.layers) {
    if (layer.kind == OpKind::kDepthwiseConv2d) {
      EXPECT_EQ(layer.kernel, 5);
    }
  }
}

TEST(ModelIrTest, RejectsBadInputs) {
  Architecture bad;
  bad.blocks[0].expansion = 2;
  EXPECT_THROW(build_ir(bad, 224), Error);
  Rng rng(5);
  const Architecture ok = MnasSpace::to_blocks(MnasSpace::instance().sample(rng));
  EXPECT_THROW(build_ir(ok, 16), Error);
  EXPECT_THROW(build_ir(ok, 2048), Error);
}

TEST(ModelIrTest, OpKindNamesComplete) {
  EXPECT_STREQ(op_kind_name(OpKind::kConv2d), "conv2d");
  EXPECT_STREQ(op_kind_name(OpKind::kDepthwiseConv2d), "dwconv2d");
  EXPECT_STREQ(op_kind_name(OpKind::kGlobalAvgPool), "gavgpool");
  EXPECT_STREQ(op_kind_name(OpKind::kFullyConnected), "fc");
  EXPECT_STREQ(op_kind_name(OpKind::kScale), "scale");
  EXPECT_STREQ(op_kind_name(OpKind::kAdd), "add");
}

TEST(ModelIrTest, GflopsCountsTwoPerMac) {
  Rng rng(6);
  const ModelIR ir = build_ir(MnasSpace::to_blocks(MnasSpace::instance().sample(rng)), 224);
  EXPECT_NEAR(ir.gflops(),
              2.0 * static_cast<double>(ir.total_macs()) / 1e9, 1e-9);
}

// Property: every layer's accounting fields are self-consistent.
class IrLayerProperty : public ::testing::TestWithParam<int> {};

TEST_P(IrLayerProperty, LayerAccountingConsistent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 900);
  const ModelIR ir = build_ir(MnasSpace::to_blocks(MnasSpace::instance().sample(rng)), 224);
  for (const auto& layer : ir.layers) {
    EXPECT_GT(layer.output_elems, 0u) << layer.name;
    EXPECT_GT(layer.input_elems, 0u) << layer.name;
    EXPECT_GT(layer.macs, 0u) << layer.name;
    if (layer.kind == OpKind::kConv2d ||
        layer.kind == OpKind::kDepthwiseConv2d ||
        layer.kind == OpKind::kFullyConnected) {
      EXPECT_GT(layer.params, 0u) << layer.name;
      EXPECT_GE(layer.params, layer.weight_elems) << layer.name;
    } else {
      EXPECT_EQ(layer.params, 0u) << layer.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomArchs, IrLayerProperty, ::testing::Range(0, 15));

}  // namespace
}  // namespace anb
